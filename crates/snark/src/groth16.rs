//! Groth16 (J. Groth, "On the Size of Pairing-Based Non-interactive
//! Arguments", EUROCRYPT 2016 — reference \[11\] of the paper): setup,
//! prover, and verifier over BN254.
//!
//! The paper's §II-B prescribes Groth16 for the RLN membership/share/
//! nullifier circuit; parameter generation in production would run as an
//! MPC ceremony ([12–15]) — here the toxic waste is sampled from the
//! caller's RNG and dropped, which preserves every protocol behaviour the
//! reproduction measures.

use std::sync::{Arc, Mutex};

use rand::Rng;
use waku_arith::fields::Fr;
use waku_arith::traits::{Field, PrimeField};
use waku_curve::fp12::Fp12;
use waku_curve::g1::{G1Affine, G1Projective};
use waku_curve::g2::{G2Affine, G2Projective};
use waku_curve::msm::{msm, msm_chunked, WindowTable};
use waku_curve::pairing::{final_exponentiation, miller_loop_mixed, pairing, G2Prepared};
use waku_curve::point::Projective;

use crate::qap;
use crate::r1cs::ConstraintSystem;
use crate::SnarkError;

/// Groth16 verifying key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    /// `α·G1`.
    pub alpha_g1: G1Affine,
    /// `β·G2`.
    pub beta_g2: G2Affine,
    /// `γ·G2`.
    pub gamma_g2: G2Affine,
    /// `δ·G2`.
    pub delta_g2: G2Affine,
    /// Per-instance-variable `(β·Aᵢ(τ) + α·Bᵢ(τ) + Cᵢ(τ))/γ · G1`
    /// (index 0 is the constant-one variable).
    pub ic: Vec<G1Affine>,
}

/// Groth16 proving key.
#[derive(Clone, Debug)]
pub struct ProvingKey {
    /// The embedded verifying key.
    pub vk: VerifyingKey,
    /// `β·G1`.
    pub beta_g1: G1Affine,
    /// `δ·G1`.
    pub delta_g1: G1Affine,
    /// `Aᵢ(τ)·G1` per variable (flat index order).
    pub a_query: Vec<G1Affine>,
    /// `Bᵢ(τ)·G1` per variable.
    pub b_g1_query: Vec<G1Affine>,
    /// `Bᵢ(τ)·G2` per variable.
    pub b_g2_query: Vec<G2Affine>,
    /// `τᵏ·Z(τ)/δ · G1` for k = 0..n−1.
    pub h_query: Vec<G1Affine>,
    /// `(β·Aᵢ(τ) + α·Bᵢ(τ) + Cᵢ(τ))/δ · G1` per *witness* variable.
    pub l_query: Vec<G1Affine>,
}

/// A Groth16 proof: 2 G1 points + 1 G2 point (256 bytes uncompressed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Proof {
    /// The `A` element.
    pub a: G1Affine,
    /// The `B` element.
    pub b: G2Affine,
    /// The `C` element.
    pub c: G1Affine,
}

impl VerifyingKey {
    /// Uncompressed byte size (G1 = 64 B, G2 = 128 B).
    pub fn size_in_bytes(&self) -> usize {
        64 + 128 * 3 + self.ic.len() * 64
    }
}

impl ProvingKey {
    /// Uncompressed byte size — the paper's §IV reports ≈3.89 MB for the
    /// RLN prover key at group size 2³².
    pub fn size_in_bytes(&self) -> usize {
        self.vk.size_in_bytes()
            + 64 * 2
            + self.a_query.len() * 64
            + self.b_g1_query.len() * 64
            + self.b_g2_query.len() * 128
            + self.h_query.len() * 64
            + self.l_query.len() * 64
    }
}

impl Proof {
    /// Serializes to 256 uncompressed bytes
    /// (`A.x ‖ A.y ‖ B.x.c0 ‖ B.x.c1 ‖ B.y.c0 ‖ B.y.c1 ‖ C.x ‖ C.y`).
    pub fn to_bytes(&self) -> [u8; 256] {
        let mut out = [0u8; 256];
        out[0..32].copy_from_slice(&self.a.x.to_le_bytes());
        out[32..64].copy_from_slice(&self.a.y.to_le_bytes());
        out[64..96].copy_from_slice(&self.b.x.c0.to_le_bytes());
        out[96..128].copy_from_slice(&self.b.x.c1.to_le_bytes());
        out[128..160].copy_from_slice(&self.b.y.c0.to_le_bytes());
        out[160..192].copy_from_slice(&self.b.y.c1.to_le_bytes());
        out[192..224].copy_from_slice(&self.c.x.to_le_bytes());
        out[224..256].copy_from_slice(&self.c.y.to_le_bytes());
        out
    }

    /// Parses a proof, checking every point is on its curve.
    ///
    /// Returns `None` for malformed bytes or off-curve points.
    pub fn from_bytes(bytes: &[u8; 256]) -> Option<Self> {
        use waku_arith::fields::Fq;
        use waku_curve::fp2::Fp2;
        let fq = |range: std::ops::Range<usize>| -> Option<Fq> {
            Fq::from_le_bytes(bytes[range].try_into().ok()?)
        };
        let a = G1Affine::new(fq(0..32)?, fq(32..64)?)?;
        let b = G2Affine::new(
            Fp2::new(fq(64..96)?, fq(96..128)?),
            Fp2::new(fq(128..160)?, fq(160..192)?),
        )?;
        let c = G1Affine::new(fq(192..224)?, fq(224..256)?)?;
        Some(Proof { a, b, c })
    }
}

/// Runs the trusted setup for the (finalized) constraint system.
///
/// The toxic waste (τ, α, β, γ, δ) is sampled from `rng` and dropped.
///
/// # Panics
///
/// Panics if the constraint system has not been finalized.
pub fn setup<R: Rng + ?Sized>(cs: &ConstraintSystem, rng: &mut R) -> ProvingKey {
    assert!(cs.is_finalized(), "finalize the constraint system first");
    let tau = Fr::random(rng);
    let alpha = Fr::random(rng);
    let beta = Fr::random(rng);
    let gamma = Fr::random(rng);
    let delta = Fr::random(rng);
    let gamma_inv = gamma.inverse().expect("gamma nonzero");
    let delta_inv = delta.inverse().expect("delta nonzero");

    let q = qap::evaluate_at(cs, tau);
    let num_vars = q.a.len();
    let num_instance = cs.num_instance();
    let n = q.domain.size();

    let g1_table = WindowTable::new(G1Projective::generator(), 8);
    let g2_table = WindowTable::new(G2Projective::generator(), 8);

    // Per-variable queries.
    let a_query = Projective::batch_to_affine(&g1_table.mul_batch(&q.a));
    let b_g1_query = Projective::batch_to_affine(&g1_table.mul_batch(&q.b));
    let b_g2_query = Projective::batch_to_affine(&g2_table.mul_batch(&q.b));

    // (β·Aᵢ + α·Bᵢ + Cᵢ) split by γ (instance) and δ (witness).
    let combined: Vec<Fr> = (0..num_vars)
        .map(|i| beta * q.a[i] + alpha * q.b[i] + q.c[i])
        .collect();
    let ic_scalars: Vec<Fr> = combined[..num_instance]
        .iter()
        .map(|x| *x * gamma_inv)
        .collect();
    let l_scalars: Vec<Fr> = combined[num_instance..]
        .iter()
        .map(|x| *x * delta_inv)
        .collect();
    let ic = Projective::batch_to_affine(&g1_table.mul_batch(&ic_scalars));
    let l_query = Projective::batch_to_affine(&g1_table.mul_batch(&l_scalars));

    // τᵏ·Z(τ)/δ queries, k = 0..n−1 (h has n−1 coefficients).
    let mut h_scalars = Vec::with_capacity(n - 1);
    let mut tau_k = Fr::one();
    for _ in 0..n - 1 {
        h_scalars.push(tau_k * q.zt * delta_inv);
        tau_k *= tau;
    }
    let h_query = Projective::batch_to_affine(&g1_table.mul_batch(&h_scalars));

    let vk = VerifyingKey {
        alpha_g1: g1_table.mul(alpha).to_affine(),
        beta_g2: g2_table.mul(beta).to_affine(),
        gamma_g2: g2_table.mul(gamma).to_affine(),
        delta_g2: g2_table.mul(delta).to_affine(),
        ic,
    };
    ProvingKey {
        vk,
        beta_g1: g1_table.mul(beta).to_affine(),
        delta_g1: g1_table.mul(delta).to_affine(),
        a_query,
        b_g1_query,
        b_g2_query,
        h_query,
        l_query,
    }
}

/// Produces a proof for the (finalized, satisfied) constraint system.
///
/// # Errors
///
/// Returns [`SnarkError::Unsatisfied`] when a constraint does not hold, so
/// callers cannot accidentally publish proofs of false statements.
pub fn prove<R: Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ConstraintSystem,
    rng: &mut R,
) -> Result<Proof, SnarkError> {
    if !cs.is_finalized() {
        return Err(SnarkError::NotFinalized);
    }
    if pk.a_query.len() != cs.num_instance() + cs.num_witness() {
        return Err(SnarkError::KeyMismatch);
    }

    let z = cs.full_assignment();
    // Draw the blinding factors before any parallel work so the RNG stream
    // (and therefore the proof) is identical at every pool size.
    let r = Fr::random(rng);
    let s = Fr::random(rng);

    let delta_g1 = pk.delta_g1.to_projective();
    let witness = &z[cs.num_instance()..];

    // The three query MSMs and the quotient-polynomial pipeline (its FFTs,
    // satisfaction check, and the fused L+H MSM of the C element) are
    // independent: run all four as concurrent pool tasks instead of
    // sequentially. Each MSM further fans its Pippenger windows out on the
    // same pool, and the satisfaction check rides on the row evaluations
    // the quotient computes anyway.
    let ((a_sum, b2_sum), (b1_sum, lh_sum)) = waku_pool::join(
        || waku_pool::join(|| msm(&pk.a_query, &z), || msm(&pk.b_g2_query, &z)),
        || {
            waku_pool::join(
                || msm(&pk.b_g1_query, &z),
                || {
                    let h = qap::quotient_poly_checked(cs)?;
                    Ok::<_, usize>(msm_chunked(&[
                        (&pk.l_query[..], witness),
                        (&pk.h_query[..], &h),
                    ]))
                },
            )
        },
    );
    let lh_sum = lh_sum.map_err(SnarkError::Unsatisfied)?;

    // A = α + Σ zᵢAᵢ(τ) + rδ
    let a = pk
        .vk
        .alpha_g1
        .to_projective()
        .add(&a_sum)
        .add(&delta_g1.mul(r));
    // B = β + Σ zᵢBᵢ(τ) + sδ   (in both groups)
    let b_g2 = pk
        .vk
        .beta_g2
        .to_projective()
        .add(&b2_sum)
        .add(&pk.vk.delta_g2.to_projective().mul(s));
    let b_g1 = pk
        .beta_g1
        .to_projective()
        .add(&b1_sum)
        .add(&delta_g1.mul(s));

    // C = Σ_w zᵢLᵢ + Σ hₖ·(τᵏZ(τ)/δ) + sA + rB − rsδ
    let c = lh_sum
        .add(&a.mul(s))
        .add(&b_g1.mul(r))
        .add(&delta_g1.mul(r * s).neg());

    Ok(Proof {
        a: a.to_affine(),
        b: b_g2.to_affine(),
        c: c.to_affine(),
    })
}

/// A verifying key with the `e(α, β)` pairing *and* the Miller-loop line
/// coefficients of the fixed G2 elements (γ, δ) precomputed.
///
/// Single verification then costs one dynamic Miller pair plus two
/// prepared-line replays and a final exponentiation; batches of proofs
/// share the replays, the squaring chain, and the final exponentiation
/// through [`PreparedVerifyingKey::verify_batch`].
#[derive(Clone, Debug)]
pub struct PreparedVerifyingKey {
    /// The underlying verifying key.
    pub vk: VerifyingKey,
    alpha_beta: Fp12,
    gamma_prepared: G2Prepared,
    delta_prepared: G2Prepared,
}

impl From<VerifyingKey> for PreparedVerifyingKey {
    fn from(vk: VerifyingKey) -> Self {
        let alpha_beta = pairing(&vk.alpha_g1, &vk.beta_g2);
        let gamma_prepared = G2Prepared::new(&vk.gamma_g2);
        let delta_prepared = G2Prepared::new(&vk.delta_g2);
        PreparedVerifyingKey {
            vk,
            alpha_beta,
            gamma_prepared,
            delta_prepared,
        }
    }
}

impl PreparedVerifyingKey {
    /// Verifies a proof against public inputs (excluding the constant 1).
    ///
    /// # Errors
    ///
    /// Returns [`SnarkError::InputLengthMismatch`] when the number of public
    /// inputs does not match the key.
    pub fn verify(&self, proof: &Proof, public_inputs: &[Fr]) -> Result<bool, SnarkError> {
        if public_inputs.len() + 1 != self.vk.ic.len() {
            return Err(SnarkError::InputLengthMismatch);
        }
        // Reject points outside the curve/subgroup (defense against
        // malformed network input).
        if !proof.a.is_on_curve() || !proof.b.is_on_curve() || !proof.c.is_on_curve() {
            return Ok(false);
        }
        let ic = self.aggregate_ic(public_inputs);
        // e(A,B) = e(α,β)·e(IC,γ)·e(C,δ)
        //  ⟺ FE(ml(−A,B)·ml(IC,γ)·ml(C,δ)) · e(α,β) = 1
        let ml = miller_loop_mixed(
            &[(proof.a.neg(), proof.b)],
            &[(ic, &self.gamma_prepared), (proof.c, &self.delta_prepared)],
        );
        let Some(fe) = final_exponentiation(&ml) else {
            return Ok(false);
        };
        Ok(fe * self.alpha_beta == Fp12::one())
    }

    /// `IC₀ + Σ xⱼ·ICⱼ₊₁` for one instance vector.
    fn aggregate_ic(&self, public_inputs: &[Fr]) -> G1Affine {
        let mut ic = self.vk.ic[0].to_projective();
        for (input, base) in public_inputs.iter().zip(self.vk.ic[1..].iter()) {
            ic = ic.add(&base.mul(*input));
        }
        ic.to_affine()
    }

    /// Verifies `proofs[i]` against `inputs[i]` for all `i` at once via a
    /// random linear combination: with transcript-derived 128-bit scalars
    /// `rᵢ`, the N pairing equations collapse into
    ///
    /// ```text
    /// FE( ∏ᵢ ml(−rᵢA_i, B_i) · ml(Σᵢ rᵢIC_i, γ) · ml(Σᵢ rᵢC_i, δ) )
    ///   · e(α,β)^(Σᵢ rᵢ)  ==  1,
    /// ```
    ///
    /// one mixed Miller loop (the dynamic pairs share every squaring and a
    /// per-step batch inversion, γ/δ replay prepared lines) and one final
    /// exponentiation. The `rᵢ` are drawn by Fiat–Shamir from a hash over
    /// the verifying key, every proof, and every public input, so an
    /// adversary cannot craft proofs whose errors cancel: any invalid
    /// member fails the whole batch except with probability ≈2⁻¹²⁸.
    ///
    /// Returns `Ok(true)` for the empty batch. Use
    /// [`PreparedVerifyingKey::verify_batch_isolating`] to find *which*
    /// members of a failing batch are invalid.
    ///
    /// # Errors
    ///
    /// Returns [`SnarkError::InputLengthMismatch`] when `proofs` and
    /// `inputs` differ in length or any input vector does not match the
    /// key.
    pub fn verify_batch(&self, proofs: &[Proof], inputs: &[Vec<Fr>]) -> Result<bool, SnarkError> {
        if proofs.len() != inputs.len() {
            return Err(SnarkError::InputLengthMismatch);
        }
        if inputs.iter().any(|x| x.len() + 1 != self.vk.ic.len()) {
            return Err(SnarkError::InputLengthMismatch);
        }
        match proofs.len() {
            0 => return Ok(true),
            1 => return self.verify(&proofs[0], &inputs[0]),
            _ => {}
        }
        if proofs
            .iter()
            .any(|p| !p.a.is_on_curve() || !p.b.is_on_curve() || !p.c.is_on_curve())
        {
            return Ok(false);
        }

        let rs = self.batch_scalars(proofs, inputs);

        // −rᵢ·Aᵢ: half-width double-and-add per proof, fanned out on the
        // pool (the per-proof Miller pair dominates; this keeps the RLC
        // scaling off the critical path).
        let jobs: Vec<(G1Affine, [u64; 2])> = proofs
            .iter()
            .zip(rs.iter())
            .map(|(p, r)| (p.a, [r.0 as u64, (r.0 >> 64) as u64]))
            .collect();
        let scaled =
            waku_pool::par_map(&jobs, |(a, limbs)| a.to_projective().mul_limbs(limbs).neg());
        let neg_a: Vec<G1Affine> = Projective::batch_to_affine(&scaled);
        let dynamic: Vec<(G1Affine, G2Affine)> = neg_a
            .into_iter()
            .zip(proofs.iter())
            .map(|(a, p)| (a, p.b))
            .collect();

        let r_fr: Vec<Fr> = rs.iter().map(|r| r.1).collect();
        // Σᵢ rᵢ·ICᵢ folded per *base*: (Σrᵢ)·IC₀ + Σⱼ (Σᵢ rᵢxᵢⱼ)·ICⱼ₊₁ —
        // one tiny MSM over the key's IC points instead of N point adds.
        let mut ic_coeffs = vec![Fr::zero(); self.vk.ic.len()];
        for (r, x) in r_fr.iter().zip(inputs.iter()) {
            ic_coeffs[0] += *r;
            for (c, xj) in ic_coeffs[1..].iter_mut().zip(x.iter()) {
                *c += *r * *xj;
            }
        }
        // Σᵢ rᵢ·Cᵢ runs as a pooled Pippenger MSM alongside the IC fold.
        let (ic_agg, c_agg) = waku_pool::join(
            || msm(&self.vk.ic, &ic_coeffs).to_affine(),
            || {
                let c_points: Vec<G1Affine> = proofs.iter().map(|p| p.c).collect();
                msm(&c_points, &r_fr).to_affine()
            },
        );

        let ml = miller_loop_mixed(
            &dynamic,
            &[
                (ic_agg, &self.gamma_prepared),
                (c_agg, &self.delta_prepared),
            ],
        );
        let Some(fe) = final_exponentiation(&ml) else {
            return Ok(false);
        };
        let r_sum = r_fr.iter().fold(Fr::zero(), |acc, r| acc + *r);
        Ok(fe * self.alpha_beta.pow(&r_sum.to_canonical_limbs()) == Fp12::one())
    }

    /// Verifies a batch and, when it fails, bisects to return the indices
    /// of exactly the invalid members (sorted ascending; empty means the
    /// whole batch verified). Cost is one batch check when all-valid, plus
    /// `O(k·log N)` sub-batch checks for `k` offenders.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedVerifyingKey::verify_batch`].
    pub fn verify_batch_isolating(
        &self,
        proofs: &[Proof],
        inputs: &[Vec<Fr>],
    ) -> Result<Vec<usize>, SnarkError> {
        let mut bad = Vec::new();
        self.isolate(proofs, inputs, 0, &mut bad)?;
        Ok(bad)
    }

    fn isolate(
        &self,
        proofs: &[Proof],
        inputs: &[Vec<Fr>],
        offset: usize,
        bad: &mut Vec<usize>,
    ) -> Result<(), SnarkError> {
        if proofs.is_empty() || self.verify_batch(proofs, inputs)? {
            return Ok(());
        }
        if proofs.len() == 1 {
            bad.push(offset);
            return Ok(());
        }
        let mid = proofs.len() / 2;
        self.isolate(&proofs[..mid], &inputs[..mid], offset, bad)?;
        self.isolate(&proofs[mid..], &inputs[mid..], offset + mid, bad)
    }

    /// Fiat–Shamir RLC scalars: a running SHA-256 transcript over a domain
    /// tag, the verifying key, and every (proof, inputs) pair, squeezed
    /// into one 128-bit scalar per proof (zero remapped to 1).
    fn batch_scalars(&self, proofs: &[Proof], inputs: &[Vec<Fr>]) -> Vec<(u128, Fr)> {
        let mut h = waku_hash::Sha256::new();
        h.update(b"waku-groth16-batch-v1");
        h.update(&self.vk.alpha_g1.x.to_le_bytes());
        h.update(&self.vk.alpha_g1.y.to_le_bytes());
        for g2 in [&self.vk.beta_g2, &self.vk.gamma_g2, &self.vk.delta_g2] {
            h.update(&g2.x.c0.to_le_bytes());
            h.update(&g2.x.c1.to_le_bytes());
            h.update(&g2.y.c0.to_le_bytes());
            h.update(&g2.y.c1.to_le_bytes());
        }
        for ic in &self.vk.ic {
            h.update(&ic.x.to_le_bytes());
            h.update(&ic.y.to_le_bytes());
        }
        for (proof, x) in proofs.iter().zip(inputs.iter()) {
            h.update(&proof.to_bytes());
            for xi in x {
                h.update(&xi.to_le_bytes());
            }
        }
        let seed = h.finalize();
        (0..proofs.len() as u64)
            .map(|i| {
                let mut h = waku_hash::Sha256::new();
                h.update(&seed);
                h.update(&i.to_le_bytes());
                let digest = h.finalize();
                let lo = u64::from_le_bytes(digest[0..8].try_into().unwrap());
                let hi = u64::from_le_bytes(digest[8..16].try_into().unwrap());
                let r = ((hi as u128) << 64 | lo as u128).max(1);
                let fr = Fr::from_canonical_limbs([r as u64, (r >> 64) as u64, 0, 0])
                    .expect("128-bit value < r");
                (r, fr)
            })
            .collect()
    }
}

/// Process-wide cache of prepared verifying keys for the free-function
/// [`verify`] path, so repeated one-shot calls against the same key do not
/// re-derive `e(α, β)` and the γ/δ line coefficients every time.
fn cached_pvk(vk: &VerifyingKey) -> Arc<PreparedVerifyingKey> {
    const CAPACITY: usize = 4;
    static CACHE: Mutex<Vec<(VerifyingKey, Arc<PreparedVerifyingKey>)>> = Mutex::new(Vec::new());
    if let Some(hit) = {
        let cache = CACHE.lock().expect("pvk cache poisoned");
        cache
            .iter()
            .find(|(k, _)| k == vk)
            .map(|(_, pvk)| Arc::clone(pvk))
    } {
        return hit;
    }
    // Prepare outside the lock (it does real pairing work); a racing
    // duplicate insert is harmless — most-recently-used stays resident.
    let prepared = Arc::new(PreparedVerifyingKey::from(vk.clone()));
    let mut cache = CACHE.lock().expect("pvk cache poisoned");
    if !cache.iter().any(|(k, _)| k == vk) {
        cache.insert(0, (vk.clone(), Arc::clone(&prepared)));
        cache.truncate(CAPACITY);
    }
    prepared
}

/// One-shot verification through a process-wide [`PreparedVerifyingKey`]
/// cache (first use of a key pays the preparation, repeats are free).
///
/// # Errors
///
/// Same as [`PreparedVerifyingKey::verify`].
pub fn verify(vk: &VerifyingKey, proof: &Proof, public_inputs: &[Fr]) -> Result<bool, SnarkError> {
    cached_pvk(vk).verify(proof, public_inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// x³ + x + 5 = out (the classic toy circuit), x = 3, out = 35.
    fn cubic_cs(x_val: u64, out_val: u64) -> ConstraintSystem {
        let mut cs = ConstraintSystem::new();
        let out = cs.alloc_input(Fr::from_u64(out_val));
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let x2 = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x3 = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x, x, x2);
        cs.enforce(x2, x, x3);
        // (x3 + x + 5) · 1 = out
        use crate::r1cs::{LinearCombination, Variable};
        let lhs = LinearCombination::from_var(x3)
            .add_term(x, Fr::one())
            .add_term(Variable::ONE, Fr::from_u64(5));
        cs.enforce(lhs, Variable::ONE, out);
        cs.finalize();
        cs
    }

    #[test]
    fn prove_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(verify(&pk.vk, &proof, &[Fr::from_u64(35)]).unwrap());
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(!verify(&pk.vk, &proof, &[Fr::from_u64(36)]).unwrap());
    }

    #[test]
    fn unsatisfied_witness_rejected_at_prove_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let good = cubic_cs(3, 35);
        let pk = setup(&good, &mut rng);
        let bad = cubic_cs(4, 35); // 4³+4+5 = 73 ≠ 35
        assert!(matches!(
            prove(&pk, &bad, &mut rng),
            Err(SnarkError::Unsatisfied(_))
        ));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        let tampered = Proof {
            a: proof.c, // swap components
            b: proof.b,
            c: proof.a,
        };
        assert!(!verify(&pk.vk, &tampered, &[Fr::from_u64(35)]).unwrap());
    }

    #[test]
    fn proofs_are_randomized() {
        let mut rng = StdRng::seed_from_u64(5);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let p1 = prove(&pk, &cs, &mut rng).unwrap();
        let p2 = prove(&pk, &cs, &mut rng).unwrap();
        assert_ne!(p1, p2, "zero-knowledge randomization");
        assert!(verify(&pk.vk, &p1, &[Fr::from_u64(35)]).unwrap());
        assert!(verify(&pk.vk, &p2, &[Fr::from_u64(35)]).unwrap());
    }

    #[test]
    fn input_length_mismatch_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(matches!(
            verify(&pk.vk, &proof, &[]),
            Err(SnarkError::InputLengthMismatch)
        ));
    }

    #[test]
    fn proof_byte_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        let bytes = proof.to_bytes();
        let back = Proof::from_bytes(&bytes).unwrap();
        assert_eq!(back, proof);
        // Corrupt a coordinate: either parse failure or off-curve.
        let mut bad = bytes;
        bad[0] ^= 1;
        assert!(Proof::from_bytes(&bad).is_none());
    }

    #[test]
    fn prepared_key_matches_oneshot() {
        let mut rng = StdRng::seed_from_u64(8);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        let pvk = PreparedVerifyingKey::from(pk.vk.clone());
        assert!(pvk.verify(&proof, &[Fr::from_u64(35)]).unwrap());
    }

    #[test]
    fn batch_verify_accepts_valid_and_rejects_corrupted() {
        let mut rng = StdRng::seed_from_u64(10);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let pvk = PreparedVerifyingKey::from(pk.vk.clone());
        let proofs: Vec<Proof> = (0..5).map(|_| prove(&pk, &cs, &mut rng).unwrap()).collect();
        let inputs: Vec<Vec<Fr>> = vec![vec![Fr::from_u64(35)]; 5];
        assert!(pvk.verify_batch(&proofs, &inputs).unwrap());
        assert!(pvk.verify_batch(&[], &[]).unwrap(), "empty batch is valid");

        // Corrupt one member: the whole batch must fail, and bisection
        // must name exactly that index.
        let mut tampered = proofs.clone();
        tampered[3] = Proof {
            a: proofs[3].c,
            b: proofs[3].b,
            c: proofs[3].a,
        };
        assert!(!pvk.verify_batch(&tampered, &inputs).unwrap());
        assert_eq!(
            pvk.verify_batch_isolating(&tampered, &inputs).unwrap(),
            vec![3]
        );

        // A corrupted *public input* is caught the same way.
        let mut bad_inputs = inputs.clone();
        bad_inputs[1] = vec![Fr::from_u64(36)];
        assert!(!pvk.verify_batch(&proofs, &bad_inputs).unwrap());
        assert_eq!(
            pvk.verify_batch_isolating(&proofs, &bad_inputs).unwrap(),
            vec![1]
        );
    }

    #[test]
    fn batch_verify_length_mismatches_error() {
        let mut rng = StdRng::seed_from_u64(12);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        let pvk = PreparedVerifyingKey::from(pk.vk.clone());
        let proof = prove(&pk, &cs, &mut rng).unwrap();
        assert!(matches!(
            pvk.verify_batch(&[proof], &[]),
            Err(SnarkError::InputLengthMismatch)
        ));
        assert!(matches!(
            pvk.verify_batch(&[proof], &[vec![]]),
            Err(SnarkError::InputLengthMismatch)
        ));
    }

    #[test]
    fn key_sizes_are_accounted() {
        let mut rng = StdRng::seed_from_u64(9);
        let cs = cubic_cs(3, 35);
        let pk = setup(&cs, &mut rng);
        assert!(pk.size_in_bytes() > pk.vk.size_in_bytes());
        assert_eq!(pk.vk.ic.len(), 2);
    }
}
