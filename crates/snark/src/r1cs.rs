//! Rank-1 constraint systems: the intermediate representation between the
//! RLN circuit (in `waku-rln`) and the Groth16 prover.
//!
//! A constraint is `⟨A, z⟩ · ⟨B, z⟩ = ⟨C, z⟩` over the assignment vector
//! `z = (1, instance…, witness…)`.

use std::sync::Arc;

use waku_arith::fields::Fr;
use waku_arith::traits::Field;

/// A variable handle. `Variable::ONE` is the constant-one instance variable.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Variable {
    /// Instance (public-input) variable. Index 0 is the constant 1.
    Instance(usize),
    /// Witness (private) variable.
    Witness(usize),
}

impl Variable {
    /// The constant-one variable.
    pub const ONE: Variable = Variable::Instance(0);
}

/// A sparse linear combination `Σ coeffᵢ · varᵢ`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinearCombination(pub Vec<(Variable, Fr)>);

impl LinearCombination {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        LinearCombination(Vec::new())
    }

    /// A single variable with coefficient one.
    pub fn from_var(v: Variable) -> Self {
        LinearCombination(vec![(v, Fr::one())])
    }

    /// A constant (coefficient on `Variable::ONE`).
    pub fn from_const(c: Fr) -> Self {
        LinearCombination(vec![(Variable::ONE, c)])
    }

    /// Adds `coeff · var` to the combination.
    pub fn add_term(mut self, var: Variable, coeff: Fr) -> Self {
        self.0.push((var, coeff));
        self
    }

    /// Scales every coefficient.
    pub fn scale(mut self, s: Fr) -> Self {
        for (_, c) in self.0.iter_mut() {
            *c *= s;
        }
        self
    }

    /// Merges duplicate variables and drops zero coefficients.
    ///
    /// Long chains of linear operations (e.g. the MDS mixing layers of the
    /// Poseidon gadget) would otherwise grow combinations exponentially;
    /// after simplification the term count is bounded by the number of
    /// distinct variables referenced.
    pub fn simplify(mut self) -> Self {
        use std::collections::HashMap;
        let mut acc: HashMap<Variable, Fr> = HashMap::with_capacity(self.0.len());
        for (v, c) in self.0.drain(..) {
            *acc.entry(v).or_insert_with(Fr::zero) += c;
        }
        let mut terms: Vec<(Variable, Fr)> =
            acc.into_iter().filter(|(_, c)| !c.is_zero()).collect();
        // Deterministic order keeps constraint systems reproducible.
        terms.sort_by_key(|(v, _)| match v {
            Variable::Instance(i) => (0usize, *i),
            Variable::Witness(i) => (1usize, *i),
        });
        LinearCombination(terms)
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no terms.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Add for LinearCombination {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        self.0.extend(rhs.0);
        self
    }
}

impl std::ops::Sub for LinearCombination {
    type Output = Self;
    fn sub(mut self, rhs: Self) -> Self {
        for (v, c) in rhs.0 {
            self.0.push((v, -c));
        }
        self
    }
}

impl From<Variable> for LinearCombination {
    fn from(v: Variable) -> Self {
        LinearCombination::from_var(v)
    }
}

impl From<Fr> for LinearCombination {
    fn from(c: Fr) -> Self {
        LinearCombination::from_const(c)
    }
}

/// A rank-1 constraint system carrying both shape and assignment.
///
/// The same type serves circuit construction (with real witness values),
/// setup (shape only — the assignment is ignored), and proving.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem {
    instance: Vec<Fr>,
    witness: Vec<Fr>,
    /// Shared so cloning a finalized template (the per-proof rebind path
    /// in `waku-rln`) is O(1) instead of a deep copy of every combination.
    constraints: Arc<Vec<(LinearCombination, LinearCombination, LinearCombination)>>,
    finalized: bool,
}

impl ConstraintSystem {
    /// Creates an empty system (instance = `[1]`).
    pub fn new() -> Self {
        ConstraintSystem {
            instance: vec![Fr::one()],
            witness: Vec::new(),
            constraints: Arc::new(Vec::new()),
            finalized: false,
        }
    }

    /// Allocates a public-input variable with the given value.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ConstraintSystem::finalize`].
    pub fn alloc_input(&mut self, value: Fr) -> Variable {
        assert!(!self.finalized, "cannot allocate after finalize");
        self.instance.push(value);
        Variable::Instance(self.instance.len() - 1)
    }

    /// Allocates a private witness variable with the given value.
    pub fn alloc_witness(&mut self, value: Fr) -> Variable {
        self.witness.push(value);
        Variable::Witness(self.witness.len() - 1)
    }

    /// Adds the constraint `a · b = c`.
    pub fn enforce(
        &mut self,
        a: impl Into<LinearCombination>,
        b: impl Into<LinearCombination>,
        c: impl Into<LinearCombination>,
    ) {
        Arc::make_mut(&mut self.constraints).push((a.into(), b.into(), c.into()));
    }

    /// Number of instance variables (including the constant 1).
    pub fn num_instance(&self) -> usize {
        self.instance.len()
    }

    /// Number of witness variables.
    pub fn num_witness(&self) -> usize {
        self.witness.len()
    }

    /// Number of constraints currently in the system.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints (for the QAP reduction).
    pub fn constraints(&self) -> &[(LinearCombination, LinearCombination, LinearCombination)] {
        &self.constraints
    }

    /// Current value of the `k`-th witness variable.
    pub fn witness_value(&self, k: usize) -> Fr {
        self.witness[k]
    }

    /// Overwrites the `k`-th witness value (assignments are orthogonal to
    /// the finalized shape, so this is allowed after `finalize`; used by
    /// the [`crate::solver::WitnessSolver`] to rebind a template system).
    pub fn set_witness_value(&mut self, k: usize, value: Fr) {
        self.witness[k] = value;
    }

    /// Overwrites the `k`-th instance value (`k = 0` is the constant 1 and
    /// cannot be changed).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn set_instance_value(&mut self, k: usize, value: Fr) {
        assert!(k != 0, "instance 0 is the constant one");
        self.instance[k] = value;
    }

    /// Current value of a variable.
    pub fn value(&self, var: Variable) -> Fr {
        match var {
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        }
    }

    /// Evaluates a linear combination against the current assignment.
    pub fn eval_lc(&self, lc: &LinearCombination) -> Fr {
        lc.0.iter()
            .map(|(v, c)| self.value(*v) * *c)
            .fold(Fr::zero(), |a, b| a + b)
    }

    /// The public inputs (excluding the constant 1).
    pub fn public_inputs(&self) -> &[Fr] {
        &self.instance[1..]
    }

    /// Flat variable index (instance first, then witness).
    pub fn flat_index(&self, var: Variable) -> usize {
        match var {
            Variable::Instance(i) => i,
            Variable::Witness(i) => self.instance.len() + i,
        }
    }

    /// Full assignment vector `z = (1, instance…, witness…)`.
    pub fn full_assignment(&self) -> Vec<Fr> {
        let mut z = self.instance.clone();
        z.extend_from_slice(&self.witness);
        z
    }

    /// Appends the per-instance-variable consistency constraints
    /// (`xᵢ · 0 = 0`) that make the instance QAP polynomials linearly
    /// independent — required for Groth16's knowledge soundness. Idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        for i in 0..self.instance.len() {
            Arc::make_mut(&mut self.constraints).push((
                LinearCombination::from_var(Variable::Instance(i)),
                LinearCombination::zero(),
                LinearCombination::zero(),
            ));
        }
        self.finalized = true;
    }

    /// True once [`ConstraintSystem::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Rebuilds a system from a deserialized *shape* (see
    /// [`crate::serialize`]): the assignment is zeroed except for the
    /// constant-one instance variable, exactly like a template whose
    /// values have not been bound yet.
    pub fn from_shape(
        num_instance: usize,
        num_witness: usize,
        constraints: Vec<(LinearCombination, LinearCombination, LinearCombination)>,
        finalized: bool,
    ) -> Self {
        assert!(num_instance >= 1, "instance 0 is the constant one");
        let mut instance = vec![Fr::zero(); num_instance];
        instance[0] = Fr::one();
        ConstraintSystem {
            instance,
            witness: vec![Fr::zero(); num_witness],
            constraints: Arc::new(constraints),
            finalized,
        }
    }

    /// Checks every constraint against the current assignment.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violated constraint.
    pub fn check_satisfied(&self) -> Result<(), usize> {
        for (i, (a, b, c)) in self.constraints.iter().enumerate() {
            if self.eval_lc(a) * self.eval_lc(b) != self.eval_lc(c) {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waku_arith::traits::PrimeField;

    #[test]
    fn simple_multiplication_satisfied() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(3));
        let b = cs.alloc_witness(Fr::from_u64(4));
        let c = cs.alloc_input(Fr::from_u64(12));
        cs.enforce(a, b, c);
        assert!(cs.check_satisfied().is_ok());
    }

    #[test]
    fn violated_constraint_reported() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(3));
        let b = cs.alloc_witness(Fr::from_u64(4));
        cs.enforce(a, b, LinearCombination::from_const(Fr::from_u64(13)));
        assert_eq!(cs.check_satisfied(), Err(0));
    }

    #[test]
    fn linear_combinations_evaluate() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(5));
        let lc = LinearCombination::from_var(a)
            .scale(Fr::from_u64(2))
            .add_term(Variable::ONE, Fr::from_u64(7));
        assert_eq!(cs.eval_lc(&lc), Fr::from_u64(17));
        let diff = lc.clone() - lc;
        assert!(cs.eval_lc(&diff).is_zero());
    }

    #[test]
    fn simplify_merges_and_drops() {
        let mut cs = ConstraintSystem::new();
        let a = cs.alloc_witness(Fr::from_u64(2));
        let b = cs.alloc_witness(Fr::from_u64(3));
        let lc = LinearCombination::from_var(a)
            .add_term(b, Fr::from_u64(4))
            .add_term(a, Fr::from_u64(2))
            .add_term(b, -Fr::from_u64(4));
        let before = cs.eval_lc(&lc);
        let simplified = lc.simplify();
        assert_eq!(simplified.len(), 1, "b cancels, a merges");
        assert_eq!(cs.eval_lc(&simplified), before);
    }

    #[test]
    fn finalize_is_idempotent_and_adds_input_constraints() {
        let mut cs = ConstraintSystem::new();
        cs.alloc_input(Fr::from_u64(1));
        let before = cs.num_constraints();
        cs.finalize();
        assert_eq!(cs.num_constraints(), before + 2); // ONE + one input
        cs.finalize();
        assert_eq!(cs.num_constraints(), before + 2);
        assert!(cs.check_satisfied().is_ok());
    }

    #[test]
    fn flat_indices_are_contiguous() {
        let mut cs = ConstraintSystem::new();
        let x = cs.alloc_input(Fr::zero());
        let w = cs.alloc_witness(Fr::zero());
        assert_eq!(cs.flat_index(Variable::ONE), 0);
        assert_eq!(cs.flat_index(x), 1);
        assert_eq!(cs.flat_index(w), 2);
    }
}
