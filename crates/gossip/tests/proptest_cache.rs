//! Property-based coverage for the compact gossip caches: the
//! generational [`SeenSet`] must behave exactly like a windowed
//! `HashSet` oracle under arbitrary insert/query/rotate sequences —
//! including adversarial fingerprint collisions — and [`TopicCaches`]
//! must mirror the original mcache's retention/gossip semantics.

use std::collections::HashMap;

use proptest::prelude::*;
use waku_gossip::cache::{SeenSet, TopicCaches};
use waku_gossip::{Message, MessageId, TrafficClass};

/// Ids drawn from a small space to force re-inserts and near-collisions;
/// `collide` forces the 8-byte fingerprint prefix to a shared value so
/// distinct ids exercise the full-id verification path.
fn arb_id() -> impl Strategy<Value = MessageId> {
    (any::<u8>(), any::<bool>()).prop_map(|(tag, collide)| {
        let mut bytes = [0u8; 32];
        if collide {
            // Shared fingerprint prefix, distinct tail.
            bytes[..8].copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
            bytes[31] = tag;
        } else {
            bytes[..8].copy_from_slice(&(tag as u64 + 1).wrapping_mul(0x9E37).to_le_bytes());
            bytes[8] = tag;
        }
        MessageId(bytes)
    })
}

#[derive(Clone, Debug)]
enum Op {
    Insert(MessageId),
    Query(MessageId),
    Rotate,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // 4:4:1 insert/query/rotate mix (the vendored stub has no
    // `prop_oneof!`; a mapped integer range plays the same role).
    (0u8..9, arb_id()).prop_map(|(kind, id)| match kind {
        0..=3 => Op::Insert(id),
        4..=7 => Op::Query(id),
        _ => Op::Rotate,
    })
}

/// The reference model: id → generation of (re-)insertion, expired after
/// `window` rotations exactly like the real structure.
struct Oracle {
    inserted: HashMap<MessageId, u32>,
    gen: u32,
    window: u32,
}

impl Oracle {
    fn new(window: u32) -> Self {
        Oracle {
            inserted: HashMap::new(),
            gen: 0,
            window,
        }
    }

    fn contains(&self, id: &MessageId) -> bool {
        self.inserted
            .get(id)
            .is_some_and(|&g| self.gen - g < self.window)
    }

    fn insert(&mut self, id: MessageId) -> bool {
        let fresh = !self.contains(&id);
        if fresh {
            self.inserted.insert(id, self.gen);
        }
        fresh
    }

    fn rotate(&mut self) {
        self.gen += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every insert/query/rotate interleaving agrees with the oracle,
    // across window sizes, including colliding fingerprints.
    #[test]
    fn seen_set_equals_windowed_hashset_oracle(
        window in 1u32..6,
        ops in proptest::collection::vec(arb_op(), 1..200)
    ) {
        let mut set = SeenSet::new(window);
        let mut oracle = Oracle::new(window);
        for op in ops {
            match op {
                Op::Insert(id) => {
                    prop_assert_eq!(set.insert(&id), oracle.insert(id));
                }
                Op::Query(id) => {
                    prop_assert_eq!(set.contains(&id), oracle.contains(&id));
                }
                Op::Rotate => {
                    set.rotate();
                    oracle.rotate();
                }
            }
            prop_assert_eq!(set.len(), oracle.inserted.iter()
                .filter(|(_, &g)| oracle.gen - g < oracle.window)
                .count());
        }
    }

    // Entries are visible for exactly `window` rotations.
    #[test]
    fn window_eviction_is_exact(
        window in 1u32..8,
        ids in proptest::collection::vec(arb_id(), 1..20)
    ) {
        let mut set = SeenSet::new(window);
        for id in &ids {
            set.insert(id);
        }
        for step in 1..=window {
            set.rotate();
            let expect = step < window;
            for id in &ids {
                prop_assert_eq!(set.contains(id), expect);
            }
        }
    }

    // The mcache semantics: the open window is never gossiped, the
    // `gossip` most recent completed windows are, and only `keep`
    // completed windows stay retrievable.
    #[test]
    fn topic_cache_gossip_and_retention(
        keep in 1usize..6,
        gossip in 1usize..4,
        per_window in proptest::collection::vec(0u8..8, 1..10)
    ) {
        let mut cache = TopicCaches::new();
        // windows_log[w] = ids inserted during window w (oldest first).
        let mut windows_log: Vec<Vec<MessageId>> = Vec::new();
        let mut uniq = 0u64;
        for &count in &per_window {
            let mut ids = Vec::new();
            for _ in 0..count {
                uniq += 1;
                let m = Message::new(1, uniq.to_le_bytes().to_vec(), 0, uniq, TrafficClass::Honest);
                ids.push(m.id);
                cache.insert(std::sync::Arc::new(m));
            }
            windows_log.push(ids);
            cache.rotate(keep);
        }
        // Expected gossip: newest `gossip` completed windows, newest
        // first — capped by retention (only `keep` windows exist), just
        // like the original mcache's truncate-then-gossip.
        let expected: Vec<MessageId> = windows_log
            .iter()
            .rev()
            .take(gossip.min(keep))
            .flat_map(|w| w.iter().copied())
            .collect();
        match cache.gossip_ids(1, gossip) {
            Some(got) => prop_assert_eq!(got.to_vec(), expected),
            None => prop_assert!(expected.is_empty()),
        }
        // Expected retention: newest `keep` completed windows.
        for (age, ids) in windows_log.iter().rev().enumerate() {
            let retained = age < keep;
            for id in ids {
                prop_assert_eq!(cache.find(id).is_some(), retained);
            }
        }
    }
}
