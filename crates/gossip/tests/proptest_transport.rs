//! Property-based coverage for the distributed driver's frame codec:
//! arbitrary frames round-trip byte-stably through encode/decode,
//! truncated prefixes and corrupted length headers come back as
//! structured [`CodecError`]s (never a panic, never an over-read — the
//! codec only ever sees slices), and the streaming [`FrameDecoder`]
//! reassembles two interleaved endpoint byte streams fed in arbitrary
//! partial writes.
//!
//! `Frame` deliberately carries no `PartialEq` (it holds `Arc`'d
//! messages); re-encoded bytes are the equality oracle throughout, which
//! is also the stronger property — byte-stable, not just value-equal.

use std::sync::Arc;

use proptest::prelude::*;
use waku_gossip::transport::MAX_FRAME_LEN;
use waku_gossip::{
    CodecError, Frame, FrameDecoder, Message, MessageId, Rpc, TrafficClass, WireEvent, WirePayload,
};

fn class_of(tag: u8) -> TrafficClass {
    match tag {
        0 => TrafficClass::Honest,
        1 => TrafficClass::Spam,
        _ => TrafficClass::Invalid,
    }
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_times() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..6)
}

fn arb_id() -> impl Strategy<Value = MessageId> {
    proptest::array::uniform32(any::<u8>()).prop_map(MessageId)
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u32>(),
        arb_bytes(24),
        any::<usize>(),
        any::<u64>(),
        0u8..3,
        any::<u64>(),
    )
        .prop_map(|(topic, data, origin, seq, class, published_at)| {
            let mut m = Message::new(topic, data, origin % 10_000, seq, class_of(class));
            m.published_at = published_at;
            m
        })
}

fn arb_rpc() -> impl Strategy<Value = Rpc> {
    // The vendored stub has no `prop_oneof!`; a mapped integer range
    // plays the same role (same trick as `proptest_cache.rs`).
    (
        0u8..5,
        arb_message(),
        proptest::collection::vec(arb_id(), 0..5),
        any::<u32>(),
    )
        .prop_map(|(kind, m, ids, topic)| match kind {
            0 => Rpc::Publish(Arc::new(m)),
            1 => Rpc::IHave(topic, ids.into()),
            2 => Rpc::IWant(ids),
            3 => Rpc::Graft(topic),
            _ => Rpc::Prune(topic),
        })
}

fn arb_payload() -> impl Strategy<Value = WirePayload> {
    (
        0u8..5,
        arb_rpc(),
        any::<usize>(),
        arb_bytes(16),
        (any::<u32>(), any::<i64>(), 0u8..3),
    )
        .prop_map(
            |(kind, rpc, from, data, (topic, delta_ms, class))| match kind {
                0 => WirePayload::Rpc {
                    from: from % 10_000,
                    rpc,
                },
                1 => WirePayload::Heartbeat,
                2 => WirePayload::Publish {
                    topic,
                    data,
                    class: class_of(class),
                },
                3 => WirePayload::Restart,
                _ => WirePayload::ClockSkew { delta_ms },
            },
        )
}

fn arb_event() -> impl Strategy<Value = WireEvent> {
    (
        (any::<u64>(), any::<usize>(), any::<u64>(), any::<usize>()),
        arb_payload(),
    )
        .prop_map(|((at, origin, seq, target), payload)| WireEvent {
            at,
            origin: origin % 10_000,
            seq,
            target: target % 10_000,
            payload,
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..8,
        (any::<u32>(), any::<u32>(), any::<u64>()),
        arb_bytes(40),
        (arb_times(), arb_times(), arb_times()),
        proptest::collection::vec(arb_event(), 0..4),
    )
        .prop_map(
            |(kind, (a, b, processed), bytes, (t1, t2, t3), events)| match kind {
                0 => Frame::Hello {
                    worker: a,
                    workers: b,
                },
                1 => Frame::Config(bytes),
                2 => Frame::Ready {
                    dist: t1,
                    cyc: t2,
                    heads: t3,
                },
                3 => Frame::Round {
                    horizons: t1,
                    events,
                },
                4 => Frame::RoundResult {
                    processed,
                    heads: t1,
                    events,
                },
                5 => Frame::Finish,
                6 => Frame::Snapshot(bytes),
                _ => Frame::Report(bytes),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every frame round-trips byte-stably, and the one-shot decoder
    // consumes exactly the encoded length.
    #[test]
    fn frames_round_trip_byte_stably(frame in arb_frame()) {
        let bytes = frame.encode();
        let (decoded, consumed) = Frame::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.encode(), bytes);
    }

    // Every strict prefix of a valid frame is a structured `Truncated`
    // error — the codec never panics and never reads past the slice.
    #[test]
    fn truncated_prefixes_are_structured_errors(frame in arb_frame()) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(CodecError::Truncated) => {}
                other => prop_assert!(
                    false,
                    "prefix {}/{} gave {:?}",
                    cut, bytes.len(), other.map(|(_, n)| n)
                ),
            }
        }
    }

    // A corrupted (oversized) length header fails fast in both the
    // one-shot and the streaming decoder — it must not be mistaken for
    // "need more data", which would stall a socket read forever.
    #[test]
    fn corrupted_length_header_is_rejected(frame in arb_frame(), extra in any::<u32>()) {
        let mut bytes = frame.encode();
        let bogus = (MAX_FRAME_LEN as u32).saturating_add(1).saturating_add(extra % 1024);
        bytes[..4].copy_from_slice(&bogus.to_le_bytes());
        prop_assert!(matches!(Frame::decode(&bytes), Err(CodecError::Oversized)));

        let mut streaming = FrameDecoder::new();
        streaming.feed(&bytes);
        prop_assert!(matches!(streaming.next_frame(), Err(CodecError::Oversized)));
    }

    // Arbitrary single-byte corruption anywhere in the frame either
    // still decodes (the flipped byte landed in opaque payload bytes) or
    // fails with a structured error — never a panic, never an over-read.
    #[test]
    fn corrupted_bytes_never_panic(
        frame in arb_frame(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = frame.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match Frame::decode(&bytes) {
            Ok((decoded, consumed)) => {
                // Whatever decoded must re-encode to what was consumed.
                prop_assert_eq!(decoded.encode(), bytes[..consumed].to_vec());
            }
            Err(
                CodecError::Truncated
                | CodecError::Oversized
                | CodecError::BadTag(_)
                | CodecError::TrailingBytes,
            ) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Two endpoints of an in-memory pipe, each streaming a frame
    // sequence to the other in arbitrary partial writes: the receiving
    // `FrameDecoder`s must reassemble exactly the sent sequences no
    // matter how the writes interleave or where the chunk boundaries
    // fall (mid-header, mid-payload, across frames).
    #[test]
    fn streaming_decoders_survive_interleaved_partial_writes(
        a_frames in proptest::collection::vec(arb_frame(), 1..5),
        b_frames in proptest::collection::vec(arb_frame(), 1..5),
        chunks in proptest::collection::vec((any::<bool>(), 1usize..17), 1..64),
    ) {
        let streams: [Vec<u8>; 2] = [
            a_frames.iter().flat_map(Frame::encode).collect(),
            b_frames.iter().flat_map(Frame::encode).collect(),
        ];
        let mut sent = [a_frames, b_frames];
        let mut offsets = [0usize; 2];
        let mut decoders = [FrameDecoder::new(), FrameDecoder::new()];
        let mut received: [Vec<Frame>; 2] = [Vec::new(), Vec::new()];

        // Drive the interleaving from the proptest chunk schedule, then
        // flush whatever it left over so every byte always arrives.
        let schedule = chunks
            .into_iter()
            .map(|(side, len)| (side as usize, len))
            .chain([(0, usize::MAX), (1, usize::MAX)]);
        for (side, len) in schedule {
            let stream = &streams[side];
            let take = len.min(stream.len() - offsets[side]);
            decoders[side].feed(&stream[offsets[side]..offsets[side] + take]);
            offsets[side] += take;
            while let Some(frame) = decoders[side].next_frame().expect("clean stream") {
                received[side].push(frame);
            }
        }

        for side in [0, 1] {
            let got: Vec<Vec<u8>> = received[side].iter().map(Frame::encode).collect();
            let want: Vec<Vec<u8>> = sent[side].drain(..).map(|f| f.encode()).collect();
            prop_assert_eq!(got, want);
        }
    }
}
