//! Message and RPC types for the GossipSub-style transport.

use std::sync::Arc;

use waku_hash::keccak256;

/// Peer identifier (index into the network's peer table).
pub type PeerId = usize;

/// Simulated network time in milliseconds.
pub type SimTime = u64;

/// Topic identifier.
pub type Topic = u32;

/// A unique message identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub [u8; 32]);

impl std::fmt::Debug for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "msg:{:02x}{:02x}{:02x}{:02x}…",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Simulation-level tag for accounting (validators never see it; metrics
/// do). Distinguishes the traffic classes of the evaluation (§IV).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Regular honest application traffic.
    Honest,
    /// Rate-violation spam (valid proofs, duplicate epoch).
    Spam,
    /// Garbage with invalid proofs.
    Invalid,
}

/// A pubsub message. The payload is reference-counted: flooding a message
/// to `n` mesh peers clones the header, not the bytes, which is what keeps
/// 10⁴-peer sweeps affordable.
#[derive(Clone, Debug)]
pub struct Message {
    /// Content-derived identifier.
    pub id: MessageId,
    /// Topic it was published to.
    pub topic: Topic,
    /// Opaque payload (e.g. a serialized RLN bundle).
    pub data: Arc<[u8]>,
    /// Originating peer.
    pub origin: PeerId,
    /// Origin-local sequence number.
    pub seq: u64,
    /// Accounting tag (not visible to protocol logic).
    pub class: TrafficClass,
    /// Network time the origin published (stamped by the simulator; rides
    /// with every copy so first-delivery latency needs no global map).
    pub published_at: SimTime,
}

impl Message {
    /// Builds a message with its content-derived id.
    pub fn new(topic: Topic, data: Vec<u8>, origin: PeerId, seq: u64, class: TrafficClass) -> Self {
        let mut buf = Vec::with_capacity(data.len() + 16);
        buf.extend_from_slice(&topic.to_le_bytes());
        buf.extend_from_slice(&(origin as u64).to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&data);
        Message {
            id: MessageId(keccak256(&buf)),
            topic,
            data: data.into(),
            origin,
            seq,
            class,
            published_at: 0,
        }
    }

    /// Approximate wire size in bytes.
    pub fn size(&self) -> usize {
        32 + 4 + 8 + 8 + self.data.len()
    }
}

/// GossipSub control and data RPCs.
#[derive(Clone, Debug)]
pub enum Rpc {
    /// Full message propagation. The message is reference-counted:
    /// flooding to `n` mesh peers and parking copies in event queues
    /// bumps a refcount instead of copying the ~100-byte header each
    /// hop — at 10⁴ peers the queues hold tens of thousands of in-flight
    /// publishes at once.
    Publish(Arc<Message>),
    /// Gossip: "I have these messages" (heartbeat fan-out to non-mesh
    /// peers). The id list is assembled once per heartbeat and shared
    /// across all `d_lazy` sends — cloning the RPC bumps a refcount
    /// instead of copying 32 bytes per cached message.
    IHave(Topic, Arc<[MessageId]>),
    /// Gossip reply: "send me these".
    IWant(Vec<MessageId>),
    /// Mesh join request.
    Graft(Topic),
    /// Mesh leave notice.
    Prune(Topic),
}

impl Rpc {
    /// Approximate wire size in bytes (for bandwidth accounting).
    pub fn size(&self) -> usize {
        match self {
            Rpc::Publish(m) => m.size(),
            Rpc::IHave(_, ids) => 8 + ids.len() * 32,
            Rpc::IWant(ids) => 4 + ids.len() * 32,
            Rpc::Graft(_) | Rpc::Prune(_) => 8,
        }
    }

    /// The topic this RPC is scoped to, when it carries one (`IWant`
    /// requests ids across topics, so it has none) — drives the
    /// per-topic bandwidth counters.
    pub fn topic(&self) -> Option<Topic> {
        match self {
            Rpc::Publish(m) => Some(m.topic),
            Rpc::IHave(topic, _) | Rpc::Graft(topic) | Rpc::Prune(topic) => Some(*topic),
            Rpc::IWant(_) => None,
        }
    }
}

/// Validator verdict on an incoming message (mirrors libp2p's
/// `ValidationResult`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Validation {
    /// Relay to mesh peers.
    Accept,
    /// Drop and penalize the propagating peer (invalid proof, §III-F).
    Reject,
    /// Drop silently (e.g. duplicate share — paper §III-F case 2b).
    Ignore,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_content_derived() {
        let a = Message::new(1, vec![1, 2, 3], 0, 0, TrafficClass::Honest);
        let b = Message::new(1, vec![1, 2, 3], 0, 0, TrafficClass::Honest);
        let c = Message::new(1, vec![1, 2, 4], 0, 0, TrafficClass::Honest);
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn id_depends_on_origin_and_seq() {
        let a = Message::new(1, vec![9], 0, 0, TrafficClass::Honest);
        let b = Message::new(1, vec![9], 1, 0, TrafficClass::Honest);
        let c = Message::new(1, vec![9], 0, 1, TrafficClass::Honest);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn rpc_sizes_scale() {
        let m = Message::new(1, vec![0; 100], 0, 0, TrafficClass::Honest);
        assert!(Rpc::Publish(Arc::new(m.clone())).size() > 100);
        assert!(Rpc::IHave(1, vec![m.id; 3].into()).size() > Rpc::Graft(1).size());
    }
}
