//! The discrete-event network simulator running a GossipSub mesh on every
//! peer (paper references \[2\]; WAKU-RELAY is "a thin layer over libp2p
//! GossipSub", §I).
//!
//! Fidelity targets for the evaluation:
//!
//! * per-link latency (configurable base + jitter) → `NetworkDelay` of the
//!   §III-F epoch-gap formula,
//! * per-peer clock drift → `ClockAsynchrony` of the same formula,
//! * mesh flooding + IHAVE/IWANT gossip → realistic propagation shape,
//! * pluggable per-peer validators → RLN / PoW / scoring-only defenses
//!   slot in without touching routing code,
//! * bandwidth/delivery accounting per traffic class → §IV's containment
//!   claims become measurable.
//!
//! This module is the facade; the event-processing core lives in
//! [`crate::engine`] and execution strategies in [`crate::scheduler`]. A
//! seeded run produces bit-identical results under the serial and the
//! event-sharded scheduler, at any shard count and any
//! `WAKU_POOL_THREADS` — determinism is a tested invariant, not luck.

use std::collections::{BTreeMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{PeerSlot, QueuedEvent, SimEvent};
use crate::faults::FaultPlan;
use crate::instrument::{engine_catalogue, network_catalogue};
use crate::message::{Message, MessageId, PeerId, SimTime, Topic, TrafficClass, Validation};
use crate::scheduler::{
    Lookahead, Scheduler, SchedulerKind, SerialScheduler, ShardedScheduler, WorkerScheduler,
};
use crate::scoring::ScoreParams;

pub use crate::engine::DeliveryRecord;

/// GossipSub protocol parameters (libp2p defaults).
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Target mesh degree.
    pub d: usize,
    /// Mesh low watermark.
    pub d_lo: usize,
    /// Mesh high watermark.
    pub d_hi: usize,
    /// Gossip fan-out (IHAVE targets per heartbeat).
    pub d_lazy: usize,
    /// Heartbeat interval (ms).
    pub heartbeat_ms: u64,
    /// Number of heartbeat windows a message stays gossip-able.
    pub mcache_gossip: usize,
    /// Number of heartbeat windows a message stays retrievable.
    pub mcache_len: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            d: 6,
            d_lo: 4,
            d_hi: 12,
            d_lazy: 6,
            heartbeat_ms: 1_000,
            mcache_gossip: 3,
            mcache_len: 5,
        }
    }
}

/// A network-configuration invariant rejected at
/// [`NetworkConfigBuilder::build`] time.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The builder field that was rejected.
    pub field: &'static str,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid network config: `{}` {}",
            self.field, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// Network construction parameters.
///
/// `#[non_exhaustive]`: construct via [`NetworkConfig::default`] or
/// [`NetworkConfig::builder`]; derive a variant of an existing config
/// with [`NetworkConfig::to_builder`] (struct-literal functional update
/// is not available across crates). The builder validates its
/// invariants once at build time.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of peers.
    pub peers: usize,
    /// Connections per peer (the gossip mesh is a subset of these).
    pub degree: usize,
    /// Minimum one-way link latency (ms). Also the sharded scheduler's
    /// time quantum (clamped to ≥ 1 ms).
    pub latency_min_ms: u64,
    /// Maximum one-way link latency (ms).
    pub latency_max_ms: u64,
    /// Clock drift is sampled uniformly from ±this (ms).
    pub clock_drift_ms: u64,
    /// GossipSub parameters.
    pub gossip: GossipConfig,
    /// Scoring parameters.
    pub scoring: ScoreParams,
    /// Determinism seed.
    pub seed: u64,
    /// Execution engine (never affects results, only wall-clock speed).
    pub scheduler: SchedulerKind,
    /// Round-bounding strategy for the sharded engine (never affects
    /// results, only barrier counts and wall-clock speed).
    pub lookahead: Lookahead,
    /// The deterministic fault plan (see [`crate::faults`]). Empty by
    /// default: without faults the simulation is byte-identical to a
    /// network built before the fault plane existed.
    pub faults: FaultPlan,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            peers: 50,
            degree: 8,
            latency_min_ms: 20,
            latency_max_ms: 120,
            clock_drift_ms: 100,
            gossip: GossipConfig::default(),
            scoring: ScoreParams::default(),
            seed: 0,
            scheduler: SchedulerKind::Auto,
            lookahead: Lookahead::Adaptive,
            faults: FaultPlan::default(),
        }
    }
}

impl NetworkConfig {
    /// Starts building a config from the defaults.
    pub fn builder() -> NetworkConfigBuilder {
        NetworkConfigBuilder::from_config(NetworkConfig::default())
    }

    /// Starts a builder pre-loaded with this config — the cross-crate
    /// replacement for struct-literal functional update.
    pub fn to_builder(&self) -> NetworkConfigBuilder {
        NetworkConfigBuilder::from_config(self.clone())
    }
}

/// Builder for [`NetworkConfig`] — see [`NetworkConfig::builder`].
#[derive(Clone, Debug)]
pub struct NetworkConfigBuilder {
    config: NetworkConfig,
}

impl NetworkConfigBuilder {
    fn from_config(config: NetworkConfig) -> Self {
        NetworkConfigBuilder { config }
    }

    /// Sets the number of peers (≥ 1).
    pub fn peers(mut self, peers: usize) -> Self {
        self.config.peers = peers;
        self
    }

    /// Sets the connections per peer (≥ 1).
    pub fn degree(mut self, degree: usize) -> Self {
        self.config.degree = degree;
        self
    }

    /// Sets the one-way link latency range `[min, max]` in milliseconds
    /// (`min ≤ max`; the sharded scheduler clamps its quantum to ≥ 1 ms
    /// internally, so `min = 0` is allowed).
    pub fn latency_ms(mut self, min: u64, max: u64) -> Self {
        self.config.latency_min_ms = min;
        self.config.latency_max_ms = max;
        self
    }

    /// Sets the clock-drift half-width in milliseconds.
    pub fn clock_drift_ms(mut self, drift: u64) -> Self {
        self.config.clock_drift_ms = drift;
        self
    }

    /// Sets the GossipSub parameters.
    pub fn gossip(mut self, gossip: GossipConfig) -> Self {
        self.config.gossip = gossip;
        self
    }

    /// Sets the peer-scoring parameters.
    pub fn scoring(mut self, scoring: ScoreParams) -> Self {
        self.config.scoring = scoring;
        self
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the execution engine.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Sets the round-bounding strategy for the sharded engine.
    pub fn lookahead(mut self, lookahead: Lookahead) -> Self {
        self.config.lookahead = lookahead;
        self
    }

    /// Installs a deterministic fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Validates the invariants and produces the config.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when `peers` or `degree` is zero, or the latency
    /// range is inverted (`min > max`).
    pub fn build(self) -> Result<NetworkConfig, ConfigError> {
        if self.config.peers == 0 {
            return Err(ConfigError {
                field: "peers",
                reason: "must be at least 1",
            });
        }
        if self.config.degree == 0 {
            return Err(ConfigError {
                field: "degree",
                reason: "must be at least 1",
            });
        }
        if self.config.latency_min_ms > self.config.latency_max_ms {
            return Err(ConfigError {
                field: "latency_min_ms",
                reason: "must not exceed latency_max_ms",
            });
        }
        Ok(self.config)
    }
}

/// Per-peer admission logic with a view of the peer's clock.
///
/// Implementors are `Send` because the sharded scheduler migrates peers
/// across pool workers between quantum rounds; shared defense state
/// (e.g. a detection log) must be `Send + Sync` and order-insensitive
/// (set unions, counters). Every closure of the legacy
/// `FnMut(PeerId, &Message, SimTime) -> Validation` shape implements
/// this trait via the blanket impl — install one with
/// [`Network::set_validator_fn`].
pub trait MessageAcceptor: Send {
    /// Judges an incoming message. `local_ms` already includes the
    /// peer's clock drift, so epoch checks observe asynchrony exactly
    /// as §III-F describes.
    fn validate(&mut self, from: PeerId, message: &Message, local_ms: SimTime) -> Validation;

    /// Observes the peer's (drifted) clock once per heartbeat, with no
    /// message attached. This is how epoch-windowed validator state
    /// learns about epoch rollovers during idle stretches: an RLN
    /// validator slides its nullifier window here, so resident state is
    /// released on schedule even when the topic carries no traffic.
    /// The default does nothing (stateless validators).
    fn on_heartbeat(&mut self, _local_ms: SimTime) {}

    /// The peer rejoined cold after a scheduled crash (fault plane). The
    /// gossip layer has already rebuilt its in-memory state; this hook is
    /// where a validator models *its* crash semantics. Durable defense
    /// state — the RLN nullifier store persists like any on-disk
    /// database — should be round-tripped through its snapshot/restore
    /// path; purely in-memory validator state should be dropped. The
    /// default does nothing (stateless validators).
    fn on_restart(&mut self, _local_ms: SimTime) {}
}

impl<F: FnMut(PeerId, &Message, SimTime) -> Validation + Send> MessageAcceptor for F {
    fn validate(&mut self, from: PeerId, message: &Message, local_ms: SimTime) -> Validation {
        self(from, message, local_ms)
    }
}

/// A boxed, installable [`MessageAcceptor`] (see [`Network::set_validator`]).
pub type Validator = Box<dyn MessageAcceptor>;

/// Per-peer delivery/bandwidth statistics.
#[derive(Clone, Debug, Default)]
pub struct PeerStats {
    /// First deliveries of honest messages.
    pub honest_delivered: u64,
    /// First deliveries of spam (rate-violating) messages.
    pub spam_delivered: u64,
    /// First deliveries of invalid-proof messages.
    pub invalid_delivered: u64,
    /// Messages this peer rejected at validation.
    pub rejected: u64,
    /// Messages ignored (duplicates etc.).
    pub ignored: u64,
    /// Total bytes received (all RPCs).
    pub bytes_received: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Validator invocations (cost proxy — each one is a proof check under
    /// RLN).
    pub validations: u64,
}

/// The simulated network.
pub struct Network {
    pub(crate) config: NetworkConfig,
    pub(crate) slots: Vec<PeerSlot>,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) now: SimTime,
    pub(crate) events_processed: u64,
}

impl Network {
    /// Builds the network: peers, random `degree`-regular-ish topology,
    /// staggered heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `peers < 2` or `degree >= peers`.
    pub fn new(config: NetworkConfig) -> Self {
        Network::build(config, |config, slots| {
            let shards = config.scheduler.resolve(config.peers);
            if shards <= 1 {
                Box::new(SerialScheduler::new())
            } else {
                // Built after the topology: the adaptive lookahead derives
                // its shard-pair latency matrix from the neighbor lists.
                Box::new(ShardedScheduler::new(config.peers, shards, config, slots))
            }
        })
    }

    /// Builds the network as distributed worker `worker` of `workers`:
    /// the full deterministic construction is replayed (drift draws,
    /// topology, heartbeat stagger, fault timeline — so every RNG and
    /// event-key stream is bit-identical to the in-process run), but the
    /// scheduler only owns the worker's contiguous shard range. Events
    /// for other workers' peers are dropped at enqueue; the owning
    /// worker replays the same construction and enqueues its own copy.
    ///
    /// # Panics
    ///
    /// Panics like [`Network::new`], and when `worker >= workers`.
    pub fn new_worker(config: NetworkConfig, workers: usize, worker: usize) -> Self {
        assert!(worker < workers, "worker index out of range");
        Network::build(config, move |config, slots| {
            let shards = config.scheduler.resolve(config.peers);
            Box::new(WorkerScheduler::new(
                config.peers,
                shards,
                workers,
                worker,
                config,
                slots,
            ))
        })
    }

    /// Shared construction: everything up to the choice of scheduler.
    fn build(
        config: NetworkConfig,
        make_scheduler: impl FnOnce(&NetworkConfig, &[PeerSlot]) -> Box<dyn Scheduler>,
    ) -> Self {
        assert!(config.peers >= 2, "need at least two peers");
        assert!(config.degree < config.peers, "degree must be < peers");
        // Construction RNG: drift, topology, and heartbeat stagger are
        // drawn once here, identically for every scheduler; runtime draws
        // come from the per-peer streams instead.
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Seen-ids must outlive every path a message can still travel:
        // mcache retention + the gossip window it can be IHAVE'd from,
        // plus slack for in-flight IWANT round-trips and clock stagger.
        let seen_window = (config.gossip.mcache_len + config.gossip.mcache_gossip + 2) as u32;
        let mut slots: Vec<PeerSlot> = (0..config.peers)
            .map(|p| {
                let drift =
                    rng.gen_range(-(config.clock_drift_ms as i64)..=config.clock_drift_ms as i64);
                PeerSlot::new(config.seed, p, drift, seen_window)
            })
            .collect();

        // Random connected topology: ring (guarantees connectivity) plus
        // random extra edges up to the target degree.
        let n = config.peers;
        let mut adjacency: Vec<HashSet<PeerId>> = vec![HashSet::new(); n];
        for (i, adj) in adjacency.iter_mut().enumerate() {
            let j = (i + 1) % n;
            adj.insert(j);
        }
        for i in 0..n {
            let j = (i + 1) % n;
            adjacency[j].insert(i);
        }
        for i in 0..n {
            let mut guard = 0;
            while adjacency[i].len() < config.degree && guard < 100 {
                let j = rng.gen_range(0..n);
                if j != i && adjacency[j].len() < config.degree + 2 {
                    adjacency[i].insert(j);
                    adjacency[j].insert(i);
                }
                guard += 1;
            }
        }
        for (slot, adj) in slots.iter_mut().zip(adjacency) {
            slot.neighbors = adj.into_iter().collect();
            slot.neighbors.sort_unstable();
        }

        let mut scheduler = make_scheduler(&config, &slots);

        // Stagger heartbeats so the whole network doesn't thunder at once.
        for (p, slot) in slots.iter_mut().enumerate() {
            let offset = rng.gen_range(0..config.gossip.heartbeat_ms);
            let key = slot.next_key(p, offset);
            scheduler.enqueue(QueuedEvent {
                key,
                target: p,
                event: SimEvent::Heartbeat,
            });
        }

        // Fault timeline (fault plane): crash windows are compiled into
        // each slot's downtime list (a pure time predicate checked at
        // dispatch — no RNG draws), and the restart / clock-skew events
        // are minted from the target peer's own key stream, exactly like
        // the heartbeat stagger above, so the timeline is
        // scheduler-invariant by the same argument.
        config.faults.validate(config.peers);
        for crash in &config.faults.crashes {
            let slot = &mut slots[crash.peer];
            slot.downtime.push((crash.crash_ms, crash.restart_ms));
            if crash.restart_ms < SimTime::MAX {
                let key = slot.next_key(crash.peer, crash.restart_ms);
                scheduler.enqueue(QueuedEvent {
                    key,
                    target: crash.peer,
                    event: SimEvent::Restart,
                });
            }
        }
        for skew in &config.faults.skews {
            let key = slots[skew.peer].next_key(skew.peer, skew.at_ms);
            scheduler.enqueue(QueuedEvent {
                key,
                target: skew.peer,
                event: SimEvent::ClockSkew {
                    delta_ms: skew.delta_ms,
                },
            });
        }

        Network {
            config,
            slots,
            scheduler,
            now: 0,
            events_processed: 0,
        }
    }

    /// Current network time (ms).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The peer's local (drifted) clock.
    pub fn local_time(&self, peer: PeerId) -> SimTime {
        self.slots[peer].local_time(self.now)
    }

    /// A peer's clock drift in ms.
    pub fn drift_ms(&self, peer: PeerId) -> i64 {
        self.slots[peer].drift_ms
    }

    /// Neighbor list of a peer.
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        &self.slots[peer].neighbors
    }

    /// Number of peer shards the active scheduler runs (1 = serial).
    pub fn shards(&self) -> usize {
        self.scheduler.shards()
    }

    /// Fork-join barrier rounds the sharded engine has executed so far
    /// (0 under the serial scheduler) — the cost metric the adaptive
    /// lookahead minimizes. Deliberately *not* part of any scenario
    /// report: it depends on the execution strategy, results do not.
    pub fn barriers(&self) -> u64 {
        self.scheduler.barriers()
    }

    /// Total events dispatched so far (the simulated-throughput metric:
    /// deterministic for a seeded run, divide by wall time for events/sec).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Subscribes a peer to a topic (it will join the mesh at heartbeats).
    pub fn subscribe(&mut self, peer: PeerId, topic: Topic) {
        self.slots[peer].subscriptions.insert(topic);
        self.slots[peer].mesh.entry(topic).or_default();
    }

    /// Subscribes every peer to a topic.
    pub fn subscribe_all(&mut self, topic: Topic) {
        for p in 0..self.slots.len() {
            self.subscribe(p, topic);
        }
    }

    /// Installs a message validator for a peer. Stateful defenses (the
    /// RLN pipeline) implement [`MessageAcceptor`] directly so they also
    /// observe heartbeats; plain closures go through
    /// [`Network::set_validator_fn`].
    pub fn set_validator(&mut self, peer: PeerId, validator: Validator) {
        self.slots[peer].validator = Some(validator);
    }

    /// Installs a closure validator for a peer. Sugar over
    /// [`Network::set_validator`] that lets the compiler infer the
    /// closure's higher-ranked signature (a bare
    /// `Box::new(|from, msg, now| …)` often fails inference once the
    /// boxed type is a trait object).
    pub fn set_validator_fn<F>(&mut self, peer: PeerId, validator: F)
    where
        F: FnMut(PeerId, &Message, SimTime) -> Validation + Send + 'static,
    {
        self.set_validator(peer, Box::new(validator));
    }

    /// Schedules a publish at an absolute network time.
    pub fn publish_at(
        &mut self,
        at: SimTime,
        peer: PeerId,
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
    ) {
        let at = at.max(self.now);
        let key = self.slots[peer].next_key(peer, at);
        self.scheduler.enqueue(QueuedEvent {
            key,
            target: peer,
            event: SimEvent::Publish { topic, data, class },
        });
    }

    /// Runs the event loop until (at least) the given network time.
    pub fn run_until(&mut self, t: SimTime) {
        self.events_processed += self.scheduler.run_until(&mut self.slots, &self.config, t);
        self.now = self.now.max(t);
    }

    /// Per-peer statistics.
    pub fn stats(&self, peer: PeerId) -> &PeerStats {
        &self.slots[peer].stats
    }

    /// Aggregated statistics over all peers.
    pub fn total_stats(&self) -> PeerStats {
        let mut total = PeerStats::default();
        for p in &self.slots {
            total.honest_delivered += p.stats.honest_delivered;
            total.spam_delivered += p.stats.spam_delivered;
            total.invalid_delivered += p.stats.invalid_delivered;
            total.rejected += p.stats.rejected;
            total.ignored += p.stats.ignored;
            total.bytes_received += p.stats.bytes_received;
            total.bytes_sent += p.stats.bytes_sent;
            total.validations += p.stats.validations;
        }
        total
    }

    /// First-delivery records for a message, in receiving-peer order.
    pub fn deliveries(&self, id: MessageId) -> Vec<DeliveryRecord> {
        self.slots
            .iter()
            .flat_map(|s| s.deliveries.iter())
            .filter(|(mid, _)| *mid == id)
            .map(|(_, rec)| *rec)
            .collect()
    }

    /// All observed first-delivery latencies (ms), for Thr estimation
    /// (§III-F: `NetworkDelay`). Deterministic order: peers ascending,
    /// each peer's deliveries in arrival order.
    pub fn delivery_latencies(&self) -> Vec<u64> {
        self.slots
            .iter()
            .flat_map(|s| s.deliveries.iter())
            .map(|(_, d)| d.at - d.published_at)
            .collect()
    }

    /// First deliveries of messages *published at or after* `from`, split
    /// `(honest, spam)` — the re-convergence measurement fault scenarios
    /// take after the last partition heal / peer rejoin.
    pub fn deliveries_published_since(&self, from: SimTime) -> (u64, u64) {
        let mut honest = 0;
        let mut spam = 0;
        for (_, d) in self.slots.iter().flat_map(|s| s.deliveries.iter()) {
            if d.published_at >= from {
                match d.class {
                    TrafficClass::Honest => honest += 1,
                    TrafficClass::Spam => spam += 1,
                    TrafficClass::Invalid => {}
                }
            }
        }
        (honest, spam)
    }

    /// Score neighbor `of` currently assigns to `subject`.
    pub fn score(&self, of: PeerId, subject: PeerId) -> f64 {
        self.slots[of].score_of(subject, &self.config.scoring)
    }

    /// One merged metrics snapshot for the whole network: the per-peer
    /// engine recorders (event counts, dwell histogram — deterministic,
    /// bit-identical across schedulers) folded together, plus the
    /// network-level counters derived from [`PeerStats`] and the
    /// scheduler's `engine_`-prefixed cost gauges (which *do* depend on
    /// the execution strategy — filter that prefix before comparing
    /// snapshots across schedulers).
    pub fn metrics_snapshot(&self) -> waku_metrics::Snapshot {
        let mut snapshot = self.metrics_snapshot_shard();
        // Snapshot-time fill from the plan + the (scheduler-invariant)
        // clock: which scheduled partitions have healed by now. Added
        // once per *network*, not per worker — the distributed
        // coordinator merges per-worker shard snapshots and then folds
        // this part in exactly once (see [`plan_heals_snapshot`]).
        snapshot.merge(&plan_heals_snapshot(&self.config.faults, self.now));
        snapshot
    }

    /// The shard-local part of [`Network::metrics_snapshot`]: per-peer
    /// engine recorders plus `PeerStats`-derived counters, *without* the
    /// plan-derived `partition_heals` fill. On a distributed worker every
    /// value here is owned-peers-only (non-owned slots never dispatch),
    /// so merging the per-worker snapshots reproduces the in-process
    /// totals exactly.
    pub fn metrics_snapshot_shard(&self) -> waku_metrics::Snapshot {
        let engine_layout = &engine_catalogue().0;
        let mut peers = waku_metrics::LocalRecorder::new(std::sync::Arc::clone(engine_layout));
        for slot in &self.slots {
            peers.merge_from(&slot.recorder);
        }

        let (net_layout, ids) = network_catalogue();
        let mut net = waku_metrics::LocalRecorder::new(std::sync::Arc::clone(net_layout));
        let totals = self.total_stats();
        net.set(ids.shards, self.shards() as u64);
        net.add(ids.barriers, self.barriers());
        net.add(ids.bytes_sent, totals.bytes_sent);
        net.add(ids.bytes_received, totals.bytes_received);
        net.add(ids.validations, totals.validations);
        net.add(ids.honest_delivered, totals.honest_delivered);
        net.add(ids.spam_delivered, totals.spam_delivered);
        net.add(ids.invalid_delivered, totals.invalid_delivered);
        net.add(ids.rejected, totals.rejected);
        net.add(ids.ignored, totals.ignored);

        let mut snapshot = peers.snapshot();
        snapshot.merge(&net.snapshot());
        snapshot
    }

    /// Network-wide per-topic `(bytes_in, bytes_out)` for topic-bearing
    /// RPCs — the label dimension `engine_topic_bytes_{in,out}` can't
    /// carry. Deterministic and scheduler-independent; on a distributed
    /// worker it covers owned peers only (merge maps across workers by
    /// summing per topic).
    pub fn topic_bytes(&self) -> BTreeMap<Topic, (u64, u64)> {
        let mut merged: BTreeMap<Topic, (u64, u64)> = BTreeMap::new();
        for slot in &self.slots {
            for (&topic, &(b_in, b_out)) in &slot.topic_bytes {
                let e = merged.entry(topic).or_insert((0, 0));
                e.0 += b_in;
                e.1 += b_out;
            }
        }
        merged
    }
}

/// The plan-derived snapshot fragment [`Network::metrics_snapshot`] adds
/// on top of the shard part: which scheduled partitions have healed by
/// `now`. Exposed so the distributed coordinator can fold it in exactly
/// once after merging per-worker shard snapshots.
pub fn plan_heals_snapshot(faults: &FaultPlan, now: SimTime) -> waku_metrics::Snapshot {
    let (net_layout, ids) = network_catalogue();
    let mut net = waku_metrics::LocalRecorder::new(std::sync::Arc::clone(net_layout));
    net.add(ids.partition_heals, faults.partitions_healed(now));
    net.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPIC: Topic = 1;

    fn small_net(seed: u64) -> Network {
        small_net_with(seed, SchedulerKind::Auto)
    }

    fn small_net_with(seed: u64, scheduler: SchedulerKind) -> Network {
        let mut net = Network::new(NetworkConfig {
            peers: 30,
            degree: 6,
            seed,
            scheduler,
            ..NetworkConfig::default()
        });
        net.subscribe_all(TOPIC);
        net
    }

    #[test]
    fn message_reaches_everyone() {
        let mut net = small_net(1);
        net.run_until(3_000); // let meshes form
        net.publish_at(3_000, 0, TOPIC, b"hello".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        let total = net.total_stats();
        // 29 receivers (origin counts its own copy as publisher, not a
        // delivery).
        assert_eq!(total.honest_delivered, 29, "full propagation");
    }

    #[test]
    fn no_duplicate_deliveries() {
        let mut net = small_net(2);
        net.run_until(3_000);
        net.publish_at(3_000, 5, TOPIC, b"x".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        for p in 0..30 {
            assert!(net.stats(p).honest_delivered <= 1, "peer {p}");
        }
    }

    #[test]
    fn rejected_messages_do_not_propagate() {
        let mut net = small_net(3);
        // every peer rejects everything
        for p in 0..30 {
            net.set_validator_fn(p, |_, _, _| Validation::Reject);
        }
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"bad".to_vec(), TrafficClass::Invalid);
        net.run_until(20_000);
        let total = net.total_stats();
        assert_eq!(total.invalid_delivered, 0);
        // Only the publisher's direct mesh saw it (≤ d_hi validations),
        // §IV: "limited to their direct connections".
        assert!(total.validations <= 12, "got {}", total.validations);
        assert!(total.rejected >= 1);
    }

    #[test]
    fn repeated_invalid_senders_get_graylisted() {
        let mut net = small_net(4);
        for p in 1..30 {
            net.set_validator_fn(p, |_, _, _| Validation::Reject);
        }
        net.run_until(3_000);
        // peer 0 floods garbage
        for i in 0..50u64 {
            net.publish_at(
                3_000 + i * 200,
                0,
                TOPIC,
                format!("junk{i}").into_bytes(),
                TrafficClass::Invalid,
            );
        }
        // Measure right at flood end, before decay forgives (§IV: scoring
        // "easily addresses" invalid-proof floods).
        net.run_until(13_000);
        let neighbors: Vec<PeerId> = net.neighbors(0).to_vec();
        let graylisted = neighbors
            .iter()
            .filter(|n| net.score(**n, 0) < net.config.scoring.graylist_threshold)
            .count();
        assert!(
            graylisted >= 1,
            "at least the mesh members graylist the flooder"
        );
        // Graylisting means later floods are dropped *before* validation:
        // far fewer proof checks than messages sent.
        let total = net.total_stats();
        assert!(
            total.validations < 150,
            "graylisting caps validation work: {}",
            total.validations
        );
        // And nothing propagated.
        assert_eq!(total.invalid_delivered, 0);
    }

    #[test]
    fn meshes_form_and_stay_bounded() {
        let mut net = small_net(5);
        net.run_until(10_000);
        for p in 0..30 {
            let mesh_size = net.slots[p].mesh.get(&TOPIC).map(|m| m.len()).unwrap_or(0);
            assert!(
                mesh_size >= 1 && mesh_size <= net.config.gossip.d_hi + net.config.degree,
                "peer {p} mesh size {mesh_size}"
            );
        }
    }

    #[test]
    fn latencies_are_recorded() {
        let mut net = small_net(6);
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"timed".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        let lats = net.delivery_latencies();
        assert_eq!(lats.len(), 29);
        assert!(lats.iter().all(|&l| l >= net.config.latency_min_ms));
    }

    #[test]
    fn clock_drift_is_bounded_and_deterministic() {
        let a = small_net(7);
        let b = small_net(7);
        for p in 0..30 {
            assert_eq!(a.drift_ms(p), b.drift_ms(p), "determinism");
            assert!(a.drift_ms(p).abs() <= a.config.clock_drift_ms as i64);
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = |seed| {
            let mut net = small_net(seed);
            net.run_until(3_000);
            net.publish_at(3_000, 0, TOPIC, b"d".to_vec(), TrafficClass::Honest);
            net.run_until(20_000);
            let t = net.total_stats();
            (t.honest_delivered, t.bytes_sent, t.validations)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn ignore_verdict_stops_propagation_without_penalty() {
        let mut net = small_net(8);
        for p in 1..30 {
            net.set_validator_fn(p, |_, _, _| Validation::Ignore);
        }
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"dup".to_vec(), TrafficClass::Spam);
        net.run_until(20_000);
        let total = net.total_stats();
        assert_eq!(total.spam_delivered, 0);
        assert!(total.ignored >= 1);
        // no scoring penalty for ignored messages
        let neighbors: Vec<PeerId> = net.neighbors(0).to_vec();
        for n in neighbors {
            assert!(net.score(n, 0) >= 0.0);
        }
    }

    /// The metrics snapshot is a faithful view: event counts equal the
    /// scheduler's own tally, the PeerStats-derived counters match
    /// `total_stats()`, and the deterministic (non-`engine_`) metrics are
    /// identical across schedulers.
    #[test]
    fn metrics_snapshot_is_consistent_and_scheduler_independent() {
        let run = |scheduler: SchedulerKind| {
            let mut net = small_net_with(11, scheduler);
            net.run_until(3_000);
            net.publish_at(3_000, 0, TOPIC, b"m".to_vec(), TrafficClass::Honest);
            net.run_until(20_000);
            let snap = net.metrics_snapshot();
            assert_eq!(snap.scalar("gossip_events_total"), net.events_processed());
            assert_eq!(
                snap.scalar("gossip_bytes_sent_total"),
                net.total_stats().bytes_sent
            );
            assert_eq!(
                snap.scalar("gossip_honest_delivered_total"),
                net.total_stats().honest_delivered
            );
            assert!(snap.histogram("gossip_event_dwell_ms").unwrap().count > 0);
            assert_eq!(snap.scalar("engine_shards") as usize, net.shards());
            // Per-topic bandwidth: the flat counters agree with the
            // per-topic map, and topic-bearing traffic is a subset of
            // all traffic (IWant carries no topic).
            let by_topic = net.topic_bytes();
            let (map_in, map_out) = by_topic
                .values()
                .fold((0, 0), |(i, o), &(b_in, b_out)| (i + b_in, o + b_out));
            assert_eq!(snap.scalar("engine_topic_bytes_in"), map_in);
            assert_eq!(snap.scalar("engine_topic_bytes_out"), map_out);
            assert!(map_out > 0 && map_out <= net.total_stats().bytes_sent);
            assert!(map_in <= net.total_stats().bytes_received);
            (snap, net.shards(), by_topic)
        };
        let (mut serial, serial_shards, serial_topics) = run(SchedulerKind::Serial);
        let (mut sharded, sharded_shards, sharded_topics) =
            run(SchedulerKind::Sharded { shards: 5 });
        assert_eq!((serial_shards, sharded_shards), (1, 5));
        // The topic-bandwidth counters carry the `engine_` prefix (ISSUE
        // naming) but are deterministic — assert their cross-scheduler
        // equality explicitly before the prefix strip below drops them.
        assert_eq!(
            serial.scalar("engine_topic_bytes_in"),
            sharded.scalar("engine_topic_bytes_in")
        );
        assert_eq!(
            serial.scalar("engine_topic_bytes_out"),
            sharded.scalar("engine_topic_bytes_out")
        );
        assert_eq!(serial_topics, sharded_topics);
        // Drop the strategy-dependent gauges; the rest must match exactly.
        serial.retain(|d| !d.name.starts_with("engine_"));
        sharded.retain(|d| !d.name.starts_with("engine_"));
        assert_eq!(serial, sharded);
    }

    /// Link drops thin delivery but the seeded outcome is identical
    /// across schedulers, and every drop is counted.
    #[test]
    fn link_faults_are_deterministic_across_schedulers() {
        let run = |scheduler: SchedulerKind| {
            let mut net = Network::new(NetworkConfig {
                peers: 30,
                degree: 6,
                seed: 21,
                scheduler,
                faults: crate::faults::FaultPlan {
                    seed: 77,
                    link: crate::faults::LinkFaults {
                        drop_permille: 150,
                        duplicate_permille: 30,
                        reorder_permille: 50,
                        extra_jitter_ms: 40,
                        reorder_delay_ms: 200,
                    },
                    ..Default::default()
                },
                ..NetworkConfig::default()
            });
            net.subscribe_all(TOPIC);
            net.run_until(3_000);
            for i in 0..8u64 {
                net.publish_at(
                    3_000 + i * 500,
                    (i as usize) % 30,
                    TOPIC,
                    format!("f{i}").into_bytes(),
                    TrafficClass::Honest,
                );
            }
            net.run_until(25_000);
            let snap = net.metrics_snapshot();
            let t = net.total_stats();
            (
                t.honest_delivered,
                t.bytes_sent,
                net.events_processed(),
                snap.scalar("engine_msgs_dropped_fault"),
            )
        };
        let serial = run(SchedulerKind::Serial);
        assert!(serial.3 > 0, "faults actually fired: {serial:?}");
        for shards in [2, 7, 30] {
            assert_eq!(serial, run(SchedulerKind::Sharded { shards }), "{shards}");
        }
    }

    /// A crashed peer stops receiving, rejoins cold at its restart time,
    /// and catches up: messages published after the restart reach it.
    #[test]
    fn crashed_peer_rejoins_and_receives_again() {
        let crash = crate::faults::CrashSpec {
            peer: 7,
            crash_ms: 4_000,
            restart_ms: 9_000,
        };
        let mut net = Network::new(NetworkConfig {
            peers: 30,
            degree: 6,
            seed: 13,
            faults: crate::faults::FaultPlan {
                crashes: vec![crash],
                ..Default::default()
            },
            ..NetworkConfig::default()
        });
        net.subscribe_all(TOPIC);
        net.run_until(3_000);
        // Published while peer 7 is down: lost to it (mcache windows at
        // the default heartbeat have expired by the 9 s restart).
        net.publish_at(5_000, 0, TOPIC, b"during".to_vec(), TrafficClass::Honest);
        // Published after the restart: must reach all 29 receivers again.
        net.publish_at(15_000, 0, TOPIC, b"after".to_vec(), TrafficClass::Honest);
        net.run_until(40_000);
        let snap = net.metrics_snapshot();
        assert_eq!(snap.scalar("peer_restarts"), 1);
        let (honest, _) = net.deliveries_published_since(15_000);
        assert_eq!(honest, 29, "post-restart publish reaches everyone");
        let down_window = net.stats(7).honest_delivered;
        assert!(
            down_window >= 1,
            "peer 7 is back in the mesh and receiving: {down_window}"
        );
    }

    /// While partitioned, no traffic crosses the cut; after healing,
    /// publishes reach both sides again, and the heal is counted.
    #[test]
    fn partition_blocks_cross_traffic_until_heal() {
        let mut net = Network::new(NetworkConfig {
            peers: 30,
            degree: 6,
            seed: 17,
            faults: crate::faults::FaultPlan {
                partitions: vec![crate::faults::PartitionSpec {
                    start_ms: 3_000,
                    end_ms: 12_000,
                    cut: 15,
                }],
                ..Default::default()
            },
            ..NetworkConfig::default()
        });
        net.subscribe_all(TOPIC);
        net.run_until(3_000);
        net.publish_at(5_000, 0, TOPIC, b"cut off".to_vec(), TrafficClass::Honest);
        net.run_until(11_000);
        let reached_far_side = (15..30).map(|p| net.stats(p).honest_delivered).sum::<u64>();
        assert_eq!(reached_far_side, 0, "nothing crosses a live partition");
        // After the heal, a fresh publish reaches everyone (the partitioned
        // message itself has left every mcache window by then).
        net.publish_at(20_000, 0, TOPIC, b"healed".to_vec(), TrafficClass::Honest);
        net.run_until(40_000);
        let (honest, _) = net.deliveries_published_since(20_000);
        assert_eq!(honest, 29, "full propagation after healing");
        assert_eq!(net.metrics_snapshot().scalar("partition_heals"), 1);
    }

    /// Clock-skew steps land at their scheduled times and move the
    /// peer's drifted clock by exactly the configured deltas.
    #[test]
    fn clock_skew_steps_apply_on_schedule() {
        let mut net = Network::new(NetworkConfig {
            peers: 30,
            degree: 6,
            seed: 19,
            clock_drift_ms: 0,
            faults: crate::faults::FaultPlan {
                skews: vec![
                    crate::faults::SkewSpec {
                        peer: 3,
                        at_ms: 5_000,
                        delta_ms: 2_500,
                    },
                    crate::faults::SkewSpec {
                        peer: 3,
                        at_ms: 10_000,
                        delta_ms: -4_000,
                    },
                ],
                ..Default::default()
            },
            ..NetworkConfig::default()
        });
        net.subscribe_all(TOPIC);
        assert_eq!(net.drift_ms(3), 0);
        net.run_until(6_000);
        assert_eq!(net.drift_ms(3), 2_500, "first step applied");
        net.run_until(11_000);
        assert_eq!(net.drift_ms(3), -1_500, "backwards step accumulated");
    }

    /// The tentpole invariant, at transport level: serial and sharded
    /// schedulers produce bit-identical stats, scores, and latencies.
    #[test]
    fn sharded_scheduler_matches_serial_bit_for_bit() {
        let digest = |scheduler: SchedulerKind| {
            let mut net = small_net_with(9, scheduler);
            for p in 1..30 {
                // A stateful validator: every 5th message is rejected, so
                // validator-internal state must also replay identically.
                let mut count = 0u64;
                net.set_validator_fn(p, move |_, _, _| {
                    count += 1;
                    if count.is_multiple_of(5) {
                        Validation::Reject
                    } else {
                        Validation::Accept
                    }
                });
            }
            net.run_until(3_000);
            for i in 0..10u64 {
                net.publish_at(
                    3_000 + i * 700,
                    (i as usize) % 30,
                    TOPIC,
                    format!("m{i}").into_bytes(),
                    TrafficClass::Honest,
                );
            }
            net.run_until(25_000);
            let t = net.total_stats();
            let mut lats = net.delivery_latencies();
            lats.sort_unstable();
            (
                t.honest_delivered,
                t.bytes_sent,
                t.bytes_received,
                t.validations,
                net.events_processed(),
                lats,
            )
        };
        let serial = digest(SchedulerKind::Serial);
        for shards in [2, 3, 7, 30] {
            assert_eq!(
                serial,
                digest(SchedulerKind::Sharded { shards }),
                "shards={shards}"
            );
        }
    }
}
