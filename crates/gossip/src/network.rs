//! The discrete-event network simulator running a GossipSub mesh on every
//! peer (paper references [2]; WAKU-RELAY is "a thin layer over libp2p
//! GossipSub", §I).
//!
//! Fidelity targets for the evaluation:
//!
//! * per-link latency (configurable base + jitter) → `NetworkDelay` of the
//!   §III-F epoch-gap formula,
//! * per-peer clock drift → `ClockAsynchrony` of the same formula,
//! * mesh flooding + IHAVE/IWANT gossip → realistic propagation shape,
//! * pluggable per-peer validators → RLN / PoW / scoring-only defenses
//!   slot in without touching routing code,
//! * bandwidth/delivery accounting per traffic class → §IV's containment
//!   claims become measurable.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::message::{Message, MessageId, PeerId, Rpc, SimTime, Topic, TrafficClass, Validation};
use crate::scoring::{PeerScore, ScoreParams};

/// GossipSub protocol parameters (libp2p defaults).
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Target mesh degree.
    pub d: usize,
    /// Mesh low watermark.
    pub d_lo: usize,
    /// Mesh high watermark.
    pub d_hi: usize,
    /// Gossip fan-out (IHAVE targets per heartbeat).
    pub d_lazy: usize,
    /// Heartbeat interval (ms).
    pub heartbeat_ms: u64,
    /// Number of heartbeat windows a message stays gossip-able.
    pub mcache_gossip: usize,
    /// Number of heartbeat windows a message stays retrievable.
    pub mcache_len: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            d: 6,
            d_lo: 4,
            d_hi: 12,
            d_lazy: 6,
            heartbeat_ms: 1_000,
            mcache_gossip: 3,
            mcache_len: 5,
        }
    }
}

/// Network construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Number of peers.
    pub peers: usize,
    /// Connections per peer (the gossip mesh is a subset of these).
    pub degree: usize,
    /// Minimum one-way link latency (ms).
    pub latency_min_ms: u64,
    /// Maximum one-way link latency (ms).
    pub latency_max_ms: u64,
    /// Clock drift is sampled uniformly from ±this (ms).
    pub clock_drift_ms: u64,
    /// GossipSub parameters.
    pub gossip: GossipConfig,
    /// Scoring parameters.
    pub scoring: ScoreParams,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            peers: 50,
            degree: 8,
            latency_min_ms: 20,
            latency_max_ms: 120,
            clock_drift_ms: 100,
            gossip: GossipConfig::default(),
            scoring: ScoreParams::default(),
            seed: 0,
        }
    }
}

/// A message validator: `(from, message, local_time_ms) → verdict`.
///
/// `local_time_ms` already includes the peer's clock drift, so epoch
/// checks observe asynchrony exactly as §III-F describes.
pub type Validator = Box<dyn FnMut(PeerId, &Message, SimTime) -> Validation>;

/// Per-peer delivery/bandwidth statistics.
#[derive(Clone, Debug, Default)]
pub struct PeerStats {
    /// First deliveries of honest messages.
    pub honest_delivered: u64,
    /// First deliveries of spam (rate-violating) messages.
    pub spam_delivered: u64,
    /// First deliveries of invalid-proof messages.
    pub invalid_delivered: u64,
    /// Messages this peer rejected at validation.
    pub rejected: u64,
    /// Messages ignored (duplicates etc.).
    pub ignored: u64,
    /// Total bytes received (all RPCs).
    pub bytes_received: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Validator invocations (cost proxy — each one is a proof check under
    /// RLN).
    pub validations: u64,
}

struct Peer {
    neighbors: Vec<PeerId>,
    subscriptions: BTreeSet<Topic>,
    mesh: BTreeMap<Topic, BTreeSet<PeerId>>,
    seen: HashSet<MessageId>,
    mcache: VecDeque<Vec<Message>>,
    current_window: Vec<Message>,
    scores: HashMap<PeerId, PeerScore>,
    validator: Option<Validator>,
    drift_ms: i64,
    stats: PeerStats,
    next_seq: u64,
}

impl Peer {
    fn score_of(&self, peer: PeerId, params: &ScoreParams) -> f64 {
        self.scores
            .get(&peer)
            .map(|s| s.score(params))
            .unwrap_or(0.0)
    }

    fn local_time(&self, now: SimTime) -> SimTime {
        (now as i64 + self.drift_ms).max(0) as SimTime
    }

    fn find_cached(&self, id: &MessageId) -> Option<&Message> {
        self.current_window
            .iter()
            .chain(self.mcache.iter().flatten())
            .find(|m| m.id == *id)
    }
}

#[derive(Clone, Debug)]
enum SimEvent {
    Rpc {
        from: PeerId,
        to: PeerId,
        rpc: Rpc,
    },
    Heartbeat {
        peer: PeerId,
    },
    Publish {
        peer: PeerId,
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
    },
}

/// First-delivery record for latency analysis.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// The receiving peer.
    pub peer: PeerId,
    /// Network time of the delivery.
    pub at: SimTime,
    /// Network time the message was published.
    pub published_at: SimTime,
}

/// The simulated network.
pub struct Network {
    config: NetworkConfig,
    peers: Vec<Peer>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Option<SimEvent>>,
    now: SimTime,
    next_tick: u64,
    rng: StdRng,
    publish_times: HashMap<MessageId, SimTime>,
    deliveries: HashMap<MessageId, Vec<DeliveryRecord>>,
}

impl Network {
    /// Builds the network: peers, random `degree`-regular-ish topology,
    /// staggered heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `peers < 2` or `degree >= peers`.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.peers >= 2, "need at least two peers");
        assert!(config.degree < config.peers, "degree must be < peers");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut peers: Vec<Peer> = (0..config.peers)
            .map(|_| Peer {
                neighbors: Vec::new(),
                subscriptions: BTreeSet::new(),
                mesh: BTreeMap::new(),
                seen: HashSet::new(),
                mcache: VecDeque::new(),
                current_window: Vec::new(),
                scores: HashMap::new(),
                validator: None,
                drift_ms: rng
                    .gen_range(-(config.clock_drift_ms as i64)..=config.clock_drift_ms as i64),
                stats: PeerStats::default(),
                next_seq: 0,
            })
            .collect();

        // Random connected topology: ring (guarantees connectivity) plus
        // random extra edges up to the target degree.
        let n = config.peers;
        let mut adjacency: Vec<HashSet<PeerId>> = vec![HashSet::new(); n];
        for i in 0..n {
            let j = (i + 1) % n;
            adjacency[i].insert(j);
            adjacency[j].insert(i);
        }
        for i in 0..n {
            let mut guard = 0;
            while adjacency[i].len() < config.degree && guard < 100 {
                let j = rng.gen_range(0..n);
                if j != i && adjacency[j].len() < config.degree + 2 {
                    adjacency[i].insert(j);
                    adjacency[j].insert(i);
                }
                guard += 1;
            }
        }
        for (peer, adj) in peers.iter_mut().zip(adjacency) {
            peer.neighbors = adj.into_iter().collect();
            peer.neighbors.sort_unstable();
        }

        let mut net = Network {
            config,
            peers,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            now: 0,
            next_tick: 0,
            rng,
            publish_times: HashMap::new(),
            deliveries: HashMap::new(),
        };
        // Stagger heartbeats so the whole network doesn't thunder at once.
        for p in 0..net.config.peers {
            let offset = net.rng.gen_range(0..net.config.gossip.heartbeat_ms);
            net.schedule(offset, SimEvent::Heartbeat { peer: p });
        }
        net
    }

    /// Current network time (ms).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The peer's local (drifted) clock.
    pub fn local_time(&self, peer: PeerId) -> SimTime {
        self.peers[peer].local_time(self.now)
    }

    /// A peer's clock drift in ms.
    pub fn drift_ms(&self, peer: PeerId) -> i64 {
        self.peers[peer].drift_ms
    }

    /// Neighbor list of a peer.
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        &self.peers[peer].neighbors
    }

    /// Subscribes a peer to a topic (it will join the mesh at heartbeats).
    pub fn subscribe(&mut self, peer: PeerId, topic: Topic) {
        self.peers[peer].subscriptions.insert(topic);
        self.peers[peer].mesh.entry(topic).or_default();
    }

    /// Subscribes every peer to a topic.
    pub fn subscribe_all(&mut self, topic: Topic) {
        for p in 0..self.peers.len() {
            self.subscribe(p, topic);
        }
    }

    /// Installs a message validator for a peer.
    pub fn set_validator(&mut self, peer: PeerId, validator: Validator) {
        self.peers[peer].validator = Some(validator);
    }

    /// Schedules a publish at an absolute network time.
    pub fn publish_at(
        &mut self,
        at: SimTime,
        peer: PeerId,
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
    ) {
        let delay = at.saturating_sub(self.now);
        self.schedule(
            delay,
            SimEvent::Publish {
                peer,
                topic,
                data,
                class,
            },
        );
    }

    /// Runs the event loop until (at least) the given network time.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(&Reverse((at, _, _))) = self.queue.peek() {
            if at > t {
                break;
            }
            let Reverse((at, _, idx)) = self.queue.pop().expect("peeked");
            self.now = at;
            let event = self.events[idx].take().expect("event present");
            self.dispatch(event);
        }
        self.now = self.now.max(t);
    }

    /// Per-peer statistics.
    pub fn stats(&self, peer: PeerId) -> &PeerStats {
        &self.peers[peer].stats
    }

    /// Aggregated statistics over all peers.
    pub fn total_stats(&self) -> PeerStats {
        let mut total = PeerStats::default();
        for p in &self.peers {
            total.honest_delivered += p.stats.honest_delivered;
            total.spam_delivered += p.stats.spam_delivered;
            total.invalid_delivered += p.stats.invalid_delivered;
            total.rejected += p.stats.rejected;
            total.ignored += p.stats.ignored;
            total.bytes_received += p.stats.bytes_received;
            total.bytes_sent += p.stats.bytes_sent;
            total.validations += p.stats.validations;
        }
        total
    }

    /// First-delivery records for a message.
    pub fn deliveries(&self, id: MessageId) -> &[DeliveryRecord] {
        self.deliveries.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All observed first-delivery latencies (ms), for Thr estimation
    /// (§III-F: `NetworkDelay`).
    pub fn delivery_latencies(&self) -> Vec<u64> {
        self.deliveries
            .values()
            .flatten()
            .map(|d| d.at - d.published_at)
            .collect()
    }

    /// Score neighbor `of` currently assigns to `subject`.
    pub fn score(&self, of: PeerId, subject: PeerId) -> f64 {
        self.peers[of].score_of(subject, &self.config.scoring)
    }

    fn schedule(&mut self, delay: SimTime, event: SimEvent) {
        let at = self.now + delay;
        let tick = self.next_tick;
        self.next_tick += 1;
        self.events.push(Some(event));
        self.queue.push(Reverse((at, tick, self.events.len() - 1)));
    }

    fn link_latency(&mut self) -> SimTime {
        self.rng
            .gen_range(self.config.latency_min_ms..=self.config.latency_max_ms)
    }

    fn send_rpc(&mut self, from: PeerId, to: PeerId, rpc: Rpc) {
        let size = rpc.size() as u64;
        self.peers[from].stats.bytes_sent += size;
        let latency = self.link_latency();
        self.schedule(latency, SimEvent::Rpc { from, to, rpc });
    }

    fn dispatch(&mut self, event: SimEvent) {
        match event {
            SimEvent::Publish {
                peer,
                topic,
                data,
                class,
            } => self.handle_local_publish(peer, topic, data, class),
            SimEvent::Heartbeat { peer } => self.handle_heartbeat(peer),
            SimEvent::Rpc { from, to, rpc } => self.handle_rpc(from, to, rpc),
        }
    }

    fn handle_local_publish(
        &mut self,
        peer: PeerId,
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
    ) {
        let seq = self.peers[peer].next_seq;
        self.peers[peer].next_seq += 1;
        let message = Message::new(topic, data, peer, seq, class);
        self.publish_times.entry(message.id).or_insert(self.now);
        self.peers[peer].seen.insert(message.id);
        self.peers[peer].current_window.push(message.clone());
        let targets = self.mesh_targets(peer, topic, None);
        for t in targets {
            self.send_rpc(peer, t, Rpc::Publish(message.clone()));
        }
    }

    /// Mesh peers for forwarding (fallback: random subscribed neighbors
    /// when the mesh hasn't formed yet).
    fn mesh_targets(&mut self, peer: PeerId, topic: Topic, exclude: Option<PeerId>) -> Vec<PeerId> {
        let p = &self.peers[peer];
        let mut targets: Vec<PeerId> = p
            .mesh
            .get(&topic)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default();
        if targets.is_empty() {
            targets = p.neighbors.clone();
            targets.shuffle(&mut self.rng);
            targets.truncate(self.config.gossip.d);
        }
        targets.retain(|t| Some(*t) != exclude && *t != peer);
        targets
    }

    fn handle_rpc(&mut self, from: PeerId, to: PeerId, rpc: Rpc) {
        self.peers[to].stats.bytes_received += rpc.size() as u64;
        // Graylisted peers are ignored outright (scoring defense).
        let score = self.peers[to].score_of(from, &self.config.scoring);
        if score < self.config.scoring.graylist_threshold {
            return;
        }
        match rpc {
            Rpc::Publish(message) => self.handle_publish(from, to, message),
            Rpc::IHave(topic, ids) => {
                if !self.peers[to].subscriptions.contains(&topic) {
                    return;
                }
                let wanted: Vec<MessageId> = ids
                    .into_iter()
                    .filter(|id| !self.peers[to].seen.contains(id))
                    .collect();
                if !wanted.is_empty() {
                    self.send_rpc(to, from, Rpc::IWant(wanted));
                }
            }
            Rpc::IWant(ids) => {
                let messages: Vec<Message> = ids
                    .iter()
                    .filter_map(|id| self.peers[to].find_cached(id).cloned())
                    .collect();
                for m in messages {
                    self.send_rpc(to, from, Rpc::Publish(m));
                }
            }
            Rpc::Graft(topic) => {
                let subscribed = self.peers[to].subscriptions.contains(&topic);
                let acceptable = score >= self.config.scoring.prune_threshold;
                if subscribed && acceptable {
                    self.peers[to].mesh.entry(topic).or_default().insert(from);
                } else {
                    self.send_rpc(to, from, Rpc::Prune(topic));
                }
            }
            Rpc::Prune(topic) => {
                if let Some(mesh) = self.peers[to].mesh.get_mut(&topic) {
                    mesh.remove(&from);
                }
            }
        }
    }

    fn handle_publish(&mut self, from: PeerId, to: PeerId, message: Message) {
        if !self.peers[to].subscriptions.contains(&message.topic) {
            return;
        }
        if self.peers[to].seen.contains(&message.id) {
            return; // duplicate floods are absorbed by the seen-cache
        }
        // Validate (the RLN pipeline plugs in here, §III-F). The validator
        // is temporarily moved out so it can run while stats are updated.
        let local = self.peers[to].local_time(self.now);
        let mut validator = self.peers[to].validator.take();
        let verdict = match validator.as_mut() {
            Some(v) => {
                self.peers[to].stats.validations += 1;
                v(from, &message, local)
            }
            None => Validation::Accept,
        };
        self.peers[to].validator = validator;
        match verdict {
            Validation::Accept => {
                self.peers[to].seen.insert(message.id);
                self.peers[to].current_window.push(message.clone());
                match message.class {
                    TrafficClass::Honest => self.peers[to].stats.honest_delivered += 1,
                    TrafficClass::Spam => self.peers[to].stats.spam_delivered += 1,
                    TrafficClass::Invalid => self.peers[to].stats.invalid_delivered += 1,
                }
                self.peers[to]
                    .scores
                    .entry(from)
                    .or_default()
                    .on_first_delivery();
                if let Some(published_at) = self.publish_times.get(&message.id).copied() {
                    self.deliveries
                        .entry(message.id)
                        .or_default()
                        .push(DeliveryRecord {
                            peer: to,
                            at: self.now,
                            published_at,
                        });
                }
                let targets = self.mesh_targets(to, message.topic, Some(from));
                for t in targets {
                    if t != message.origin {
                        self.send_rpc(to, t, Rpc::Publish(message.clone()));
                    }
                }
            }
            Validation::Reject => {
                // Not marked seen: the spam signature (nullifier clash) must
                // keep triggering detection, and scoring punishes repeats.
                self.peers[to].stats.rejected += 1;
                self.peers[to]
                    .scores
                    .entry(from)
                    .or_default()
                    .on_invalid_message();
            }
            Validation::Ignore => {
                self.peers[to].seen.insert(message.id);
                self.peers[to].stats.ignored += 1;
            }
        }
    }

    fn handle_heartbeat(&mut self, peer: PeerId) {
        let heartbeat_ms = self.config.gossip.heartbeat_ms;
        let scoring = self.config.scoring;
        let (d, d_lo, d_hi, d_lazy) = (
            self.config.gossip.d,
            self.config.gossip.d_lo,
            self.config.gossip.d_hi,
            self.config.gossip.d_lazy,
        );

        let topics: Vec<Topic> = self.peers[peer].subscriptions.iter().copied().collect();
        for topic in topics {
            // 1. prune negative-score mesh members
            let mesh: Vec<PeerId> = self.peers[peer]
                .mesh
                .get(&topic)
                .map(|m| m.iter().copied().collect())
                .unwrap_or_default();
            let mut to_prune = Vec::new();
            for m in &mesh {
                if self.peers[peer].score_of(*m, &scoring) < scoring.prune_threshold {
                    to_prune.push(*m);
                }
            }
            for m in to_prune {
                self.peers[peer]
                    .mesh
                    .get_mut(&topic)
                    .expect("mesh exists")
                    .remove(&m);
                self.send_rpc(peer, m, Rpc::Prune(topic));
            }

            // 2. degree maintenance
            let current: BTreeSet<PeerId> = self.peers[peer]
                .mesh
                .get(&topic)
                .cloned()
                .unwrap_or_default();
            if current.len() < d_lo {
                let mut candidates: Vec<PeerId> = self.peers[peer]
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|n| {
                        !current.contains(n)
                            && self.peers[peer].score_of(*n, &scoring) >= scoring.prune_threshold
                    })
                    .collect();
                candidates.shuffle(&mut self.rng);
                for c in candidates.into_iter().take(d - current.len()) {
                    self.peers[peer].mesh.entry(topic).or_default().insert(c);
                    self.send_rpc(peer, c, Rpc::Graft(topic));
                }
            } else if current.len() > d_hi {
                let mut members: Vec<PeerId> = current.iter().copied().collect();
                members.shuffle(&mut self.rng);
                for m in members.into_iter().take(current.len() - d) {
                    self.peers[peer]
                        .mesh
                        .get_mut(&topic)
                        .expect("mesh exists")
                        .remove(&m);
                    self.send_rpc(peer, m, Rpc::Prune(topic));
                }
            }

            // 3. IHAVE gossip to non-mesh subscribed neighbors
            let gossip_ids: Vec<MessageId> = self.peers[peer]
                .mcache
                .iter()
                .take(self.config.gossip.mcache_gossip)
                .flatten()
                .filter(|m| m.topic == topic)
                .map(|m| m.id)
                .collect();
            if !gossip_ids.is_empty() {
                let mesh_now: BTreeSet<PeerId> = self.peers[peer]
                    .mesh
                    .get(&topic)
                    .cloned()
                    .unwrap_or_default();
                let mut lazy: Vec<PeerId> = self.peers[peer]
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|n| !mesh_now.contains(n))
                    .collect();
                lazy.shuffle(&mut self.rng);
                for l in lazy.into_iter().take(d_lazy) {
                    self.send_rpc(peer, l, Rpc::IHave(topic, gossip_ids.clone()));
                }
            }
        }

        // 4. mesh-time accrual + decay
        let mesh_members: Vec<PeerId> = self.peers[peer]
            .mesh
            .values()
            .flat_map(|m| m.iter().copied())
            .collect();
        for m in mesh_members {
            self.peers[peer]
                .scores
                .entry(m)
                .or_default()
                .on_mesh_time(heartbeat_ms as f64 / 1000.0);
        }
        for s in self.peers[peer].scores.values_mut() {
            s.decay(&scoring);
        }

        // 5. rotate the mcache window
        let window = std::mem::take(&mut self.peers[peer].current_window);
        self.peers[peer].mcache.push_front(window);
        self.peers[peer]
            .mcache
            .truncate(self.config.gossip.mcache_len);

        self.schedule(heartbeat_ms, SimEvent::Heartbeat { peer });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPIC: Topic = 1;

    fn small_net(seed: u64) -> Network {
        let mut net = Network::new(NetworkConfig {
            peers: 30,
            degree: 6,
            seed,
            ..NetworkConfig::default()
        });
        net.subscribe_all(TOPIC);
        net
    }

    #[test]
    fn message_reaches_everyone() {
        let mut net = small_net(1);
        net.run_until(3_000); // let meshes form
        net.publish_at(3_000, 0, TOPIC, b"hello".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        let total = net.total_stats();
        // 29 receivers (origin counts its own copy as publisher, not a
        // delivery).
        assert_eq!(total.honest_delivered, 29, "full propagation");
    }

    #[test]
    fn no_duplicate_deliveries() {
        let mut net = small_net(2);
        net.run_until(3_000);
        net.publish_at(3_000, 5, TOPIC, b"x".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        for p in 0..30 {
            assert!(net.stats(p).honest_delivered <= 1, "peer {p}");
        }
    }

    #[test]
    fn rejected_messages_do_not_propagate() {
        let mut net = small_net(3);
        // every peer rejects everything
        for p in 0..30 {
            net.set_validator(p, Box::new(|_, _, _| Validation::Reject));
        }
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"bad".to_vec(), TrafficClass::Invalid);
        net.run_until(20_000);
        let total = net.total_stats();
        assert_eq!(total.invalid_delivered, 0);
        // Only the publisher's direct mesh saw it (≤ d_hi validations),
        // §IV: "limited to their direct connections".
        assert!(total.validations <= 12, "got {}", total.validations);
        assert!(total.rejected >= 1);
    }

    #[test]
    fn repeated_invalid_senders_get_graylisted() {
        let mut net = small_net(4);
        for p in 1..30 {
            net.set_validator(p, Box::new(|_, _, _| Validation::Reject));
        }
        net.run_until(3_000);
        // peer 0 floods garbage
        for i in 0..50u64 {
            net.publish_at(
                3_000 + i * 200,
                0,
                TOPIC,
                format!("junk{i}").into_bytes(),
                TrafficClass::Invalid,
            );
        }
        // Measure right at flood end, before decay forgives (§IV: scoring
        // "easily addresses" invalid-proof floods).
        net.run_until(13_000);
        let neighbors: Vec<PeerId> = net.neighbors(0).to_vec();
        let graylisted = neighbors
            .iter()
            .filter(|n| net.score(**n, 0) < net.config.scoring.graylist_threshold)
            .count();
        assert!(
            graylisted >= 1,
            "at least the mesh members graylist the flooder"
        );
        // Graylisting means later floods are dropped *before* validation:
        // far fewer proof checks than messages sent.
        let total = net.total_stats();
        assert!(
            total.validations < 150,
            "graylisting caps validation work: {}",
            total.validations
        );
        // And nothing propagated.
        assert_eq!(total.invalid_delivered, 0);
    }

    #[test]
    fn meshes_form_and_stay_bounded() {
        let mut net = small_net(5);
        net.run_until(10_000);
        for p in 0..30 {
            let mesh_size = net.peers[p].mesh.get(&TOPIC).map(|m| m.len()).unwrap_or(0);
            assert!(
                mesh_size >= 1 && mesh_size <= net.config.gossip.d_hi + net.config.degree,
                "peer {p} mesh size {mesh_size}"
            );
        }
    }

    #[test]
    fn latencies_are_recorded() {
        let mut net = small_net(6);
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"timed".to_vec(), TrafficClass::Honest);
        net.run_until(20_000);
        let lats = net.delivery_latencies();
        assert_eq!(lats.len(), 29);
        assert!(lats.iter().all(|&l| l >= net.config.latency_min_ms));
    }

    #[test]
    fn clock_drift_is_bounded_and_deterministic() {
        let a = small_net(7);
        let b = small_net(7);
        for p in 0..30 {
            assert_eq!(a.drift_ms(p), b.drift_ms(p), "determinism");
            assert!(a.drift_ms(p).abs() <= a.config.clock_drift_ms as i64);
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = |seed| {
            let mut net = small_net(seed);
            net.run_until(3_000);
            net.publish_at(3_000, 0, TOPIC, b"d".to_vec(), TrafficClass::Honest);
            net.run_until(20_000);
            let t = net.total_stats();
            (t.honest_delivered, t.bytes_sent, t.validations)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn ignore_verdict_stops_propagation_without_penalty() {
        let mut net = small_net(8);
        for p in 1..30 {
            net.set_validator(p, Box::new(|_, _, _| Validation::Ignore));
        }
        net.run_until(3_000);
        net.publish_at(3_000, 0, TOPIC, b"dup".to_vec(), TrafficClass::Spam);
        net.run_until(20_000);
        let total = net.total_stats();
        assert_eq!(total.spam_delivered, 0);
        assert!(total.ignored >= 1);
        // no scoring penalty for ignored messages
        let neighbors: Vec<PeerId> = net.neighbors(0).to_vec();
        for n in neighbors {
            assert!(net.score(n, 0) >= 0.0);
        }
    }
}
