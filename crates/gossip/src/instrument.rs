//! The gossip engine's metric catalogue (see `waku-metrics`).
//!
//! Two layouts, two recording scopes:
//!
//! * the **per-peer** catalogue ([`engine_catalogue`]) is recorded by each
//!   [`crate::engine::PeerSlot`]'s own `LocalRecorder` during dispatch —
//!   deterministic values only (event counts, sim-time dwell), so merged
//!   snapshots are bit-identical across schedulers;
//! * the **network-level** catalogue ([`network_catalogue`]) is filled at
//!   snapshot time from `PeerStats` and the scheduler. The scheduler
//!   gauges carry the `engine_` prefix because they depend on the
//!   execution strategy (serial runs have 0 barriers) — equivalence tests
//!   filter that prefix before comparing snapshots.
//!
//! Recording costs on the hot path: two counter increments per event and
//! one `leading_zeros` bucket index per scheduled event — noise against
//! the ~µs dispatch budget the E6 bench gates.

use std::sync::{Arc, OnceLock};

use waku_metrics::{CounterId, GaugeFold, GaugeId, HistogramId, Layout, LayoutBuilder};

/// Typed ids into the per-peer engine catalogue.
pub(crate) struct EngineIds {
    /// Every dispatched event.
    pub events: CounterId,
    /// Local-publish events.
    pub publishes: CounterId,
    /// Heartbeat events.
    pub heartbeats: CounterId,
    /// RPC delivery events.
    pub rpcs: CounterId,
    /// Scheduled delay of each peer-originated event (sim-time ms): the
    /// time an event sits in the queue between being minted and firing.
    pub dwell: HistogramId,
    /// Messages dropped by the fault plane: link drops, partition cuts,
    /// and RPCs addressed to a crashed peer. Carries the `engine_` prefix
    /// the ISSUE names it by, but unlike the scheduler gauges it IS
    /// deterministic (event-keyed fault streams) — the fault-plane
    /// equivalence tests assert its cross-scheduler equality explicitly.
    pub dropped_fault: CounterId,
    /// Restart events dispatched (peer rejoined after a scheduled crash).
    pub restarts: CounterId,
    /// Bytes received in topic-bearing RPCs (Publish/IHave/Graft/Prune).
    /// `engine_` prefix by ISSUE naming, but deterministic — asserted
    /// scheduler-independent explicitly, like `engine_msgs_dropped_fault`.
    pub topic_bytes_in: CounterId,
    /// Bytes sent in topic-bearing RPCs (duplicated fault transmissions
    /// count, matching `gossip_bytes_sent_total`).
    pub topic_bytes_out: CounterId,
}

/// The per-peer catalogue, built once per process.
pub(crate) fn engine_catalogue() -> &'static (Arc<Layout>, EngineIds) {
    static CELL: OnceLock<(Arc<Layout>, EngineIds)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut b = LayoutBuilder::new();
        let ids = EngineIds {
            events: b.counter("gossip_events_total", "Events dispatched by the engine."),
            publishes: b.counter("gossip_publishes_total", "Local publish events dispatched."),
            heartbeats: b.counter("gossip_heartbeats_total", "Heartbeat events dispatched."),
            rpcs: b.counter("gossip_rpcs_total", "RPC delivery events dispatched."),
            dwell: b.histogram(
                "gossip_event_dwell_ms",
                "Sim-time delay between an event being scheduled and firing (ms).",
            ),
            dropped_fault: b.counter(
                "engine_msgs_dropped_fault",
                "Messages dropped by the fault plane (link drops, partition cuts, crashed receivers).",
            ),
            restarts: b.counter(
                "peer_restarts",
                "Peers restarted after a scheduled crash (fault plane).",
            ),
            topic_bytes_in: b.counter(
                "engine_topic_bytes_in",
                "Bytes received in topic-bearing RPCs (per-topic split via Network::topic_bytes).",
            ),
            topic_bytes_out: b.counter(
                "engine_topic_bytes_out",
                "Bytes sent in topic-bearing RPCs (per-topic split via Network::topic_bytes).",
            ),
        };
        (b.build(), ids)
    })
}

/// Typed ids into the network-level catalogue (snapshot-time fill).
pub(crate) struct NetworkIds {
    /// Peer shards the scheduler resolved to (`engine_` prefix: depends
    /// on the execution strategy).
    pub shards: GaugeId,
    /// Fork-join barrier rounds (`engine_` prefix: strategy-dependent).
    pub barriers: CounterId,
    /// Bytes sent across all peers.
    pub bytes_sent: CounterId,
    /// Bytes received across all peers.
    pub bytes_received: CounterId,
    /// Validator invocations.
    pub validations: CounterId,
    /// First deliveries of honest messages.
    pub honest_delivered: CounterId,
    /// First deliveries of spam messages.
    pub spam_delivered: CounterId,
    /// First deliveries of invalid-proof messages.
    pub invalid_delivered: CounterId,
    /// Messages rejected at validation.
    pub rejected: CounterId,
    /// Messages ignored (duplicates, epoch gaps).
    pub ignored: CounterId,
    /// Scheduled partitions that have healed by snapshot time.
    pub partition_heals: CounterId,
}

/// The network-level catalogue, built once per process.
pub(crate) fn network_catalogue() -> &'static (Arc<Layout>, NetworkIds) {
    static CELL: OnceLock<(Arc<Layout>, NetworkIds)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut b = LayoutBuilder::new();
        let ids = NetworkIds {
            shards: b.gauge(
                "engine_shards",
                "Peer shards the scheduler resolved to (1 = serial).",
                GaugeFold::Sum,
            ),
            barriers: b.counter(
                "engine_barriers_total",
                "Fork-join barrier rounds executed (0 = serial).",
            ),
            bytes_sent: b.counter("gossip_bytes_sent_total", "Bytes sent, all RPCs."),
            bytes_received: b.counter("gossip_bytes_received_total", "Bytes received, all RPCs."),
            validations: b.counter("gossip_validations_total", "Validator invocations."),
            honest_delivered: b.counter(
                "gossip_honest_delivered_total",
                "First deliveries of honest messages.",
            ),
            spam_delivered: b.counter(
                "gossip_spam_delivered_total",
                "First deliveries of spam (rate-violating) messages.",
            ),
            invalid_delivered: b.counter(
                "gossip_invalid_delivered_total",
                "First deliveries of invalid-proof messages.",
            ),
            rejected: b.counter("gossip_rejected_total", "Messages rejected at validation."),
            ignored: b.counter(
                "gossip_ignored_total",
                "Messages ignored (duplicates etc.).",
            ),
            partition_heals: b.counter(
                "partition_heals",
                "Scheduled network partitions healed so far (fault plane).",
            ),
        };
        (b.build(), ids)
    })
}
