//! # waku-gossip
//!
//! A deterministic discrete-event simulation of a GossipSub network — the
//! transport substrate of WAKU-RELAY (paper §I: "a thin layer over the
//! libp2p GossipSub routing protocol").
//!
//! * [`network`] — the simulator facade: latency, clock drift, topology,
//!   the GossipSub mesh/heartbeat/IHAVE-IWANT machinery, and per-class
//!   delivery accounting.
//! * [`engine`] — per-peer event-processing core: each peer owns its
//!   protocol state, a private RNG stream, and a private event-sequence
//!   counter, so no mutable state is shared across peers.
//! * [`scheduler`] — execution strategies behind one trait: a serial
//!   global-heap scheduler and an event-sharded engine that runs each
//!   round as a fork-join on `waku-pool`, bounded by adaptive per-shard
//!   Chandy–Misra lookahead horizons, exchanging cross-shard RPCs
//!   through outboxes drained at round barriers.
//! * [`cache`] — compact generational message caches: the open-addressed
//!   duplicate-suppression set and the per-topic mcache rings behind the
//!   10⁴-peer hot path.
//! * [`faults`] — the deterministic fault-injection plane: seeded link
//!   drop/duplicate/jitter/reorder, scheduled partitions with healing,
//!   peer crash/restart timelines, and clock-skew steps, all drawn from
//!   event-keyed streams so faulty runs stay bit-identical across
//!   schedulers.
//! * [`scoring`] — the peer-scoring defense (gossipsub v1.1, reference \[2\])
//!   that the paper both compares against and composes with.
//! * [`message`] — message/RPC types and the `Validator` verdicts that the
//!   RLN validation pipeline plugs into (§III-F).
//!
//! Every run is seeded and reproducible — **bit-identical across
//! schedulers, shard counts, and pool sizes**; experiment binaries in
//! `waku-bench` and the equivalence tests rely on that.

pub mod cache;
pub mod engine;
pub mod faults;
mod instrument;
pub mod message;
pub mod network;
pub mod scheduler;
pub mod scoring;
pub mod transport;

pub use faults::{CrashSpec, FaultPlan, LinkFaults, PartitionSpec, SkewSpec};
pub use message::{Message, MessageId, PeerId, Rpc, SimTime, Topic, TrafficClass, Validation};
pub use network::{
    plan_heals_snapshot, ConfigError, DeliveryRecord, GossipConfig, MessageAcceptor, Network,
    NetworkConfig, NetworkConfigBuilder, PeerStats, Validator,
};
pub use scheduler::{Lookahead, SchedulerKind};
pub use scoring::{PeerScore, ScoreParams};
pub use transport::{
    worker_peer_range, CodecError, CoordinatorOptions, DistributedScheduler, Frame, FrameDecoder,
    RunOutcome, RunParams, TransportError, WireEvent, WirePayload, WorkerOptions, WorkerSession,
};
