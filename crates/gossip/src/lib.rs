//! # waku-gossip
//!
//! A deterministic discrete-event simulation of a GossipSub network — the
//! transport substrate of WAKU-RELAY (paper §I: "a thin layer over the
//! libp2p GossipSub routing protocol").
//!
//! * [`network`] — event-queue simulator: latency, clock drift, topology,
//!   the GossipSub mesh/heartbeat/IHAVE-IWANT machinery, and per-class
//!   delivery accounting.
//! * [`scoring`] — the peer-scoring defense (gossipsub v1.1, reference [2])
//!   that the paper both compares against and composes with.
//! * [`message`] — message/RPC types and the `Validator` verdicts that the
//!   RLN validation pipeline plugs into (§III-F).
//!
//! Every run is seeded and reproducible; experiment binaries in
//! `waku-bench` rely on that.

pub mod message;
pub mod network;
pub mod scoring;

pub use message::{Message, MessageId, PeerId, Rpc, SimTime, Topic, TrafficClass, Validation};
pub use network::{DeliveryRecord, GossipConfig, Network, NetworkConfig, PeerStats, Validator};
pub use scoring::{PeerScore, ScoreParams};
