//! GossipSub v1.1 peer scoring (Vyzovitis et al., reference \[2\] of the
//! paper) — the mechanism the paper compares against and also recommends
//! as the defense-in-depth against invalid-proof floods (§IV).
//!
//! Implemented counters (per neighbor, per topic aggregated):
//!
//! * **P1** — time in mesh (positive, capped),
//! * **P2** — first message deliveries (positive, capped),
//! * **P4** — invalid messages (negative, squared),
//! * behavioural penalty (negative, squared) for protocol abuse.
//!
//! Scores decay multiplicatively every heartbeat. Negative-score peers are
//! pruned from meshes; below the graylist threshold their RPCs are ignored
//! entirely.

/// Scoring weights and thresholds.
#[derive(Clone, Copy, Debug)]
pub struct ScoreParams {
    /// P1 weight per second of mesh membership.
    pub time_in_mesh_weight: f64,
    /// P1 cap.
    pub time_in_mesh_cap: f64,
    /// P2 weight per first delivery.
    pub first_message_weight: f64,
    /// P2 cap.
    pub first_message_cap: f64,
    /// P4 weight (must be negative); applied to the *square* of the count.
    pub invalid_message_weight: f64,
    /// Behavioural penalty weight (negative, squared).
    pub behaviour_penalty_weight: f64,
    /// Multiplicative decay applied every heartbeat to P2/P4/behaviour.
    pub decay: f64,
    /// Counters below this are zeroed after decay.
    pub decay_to_zero: f64,
    /// Mesh membership requires score ≥ this.
    pub prune_threshold: f64,
    /// RPCs from peers below this are dropped entirely.
    pub graylist_threshold: f64,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            time_in_mesh_weight: 0.01,
            time_in_mesh_cap: 300.0,
            first_message_weight: 1.0,
            first_message_cap: 100.0,
            invalid_message_weight: -10.0,
            behaviour_penalty_weight: -5.0,
            decay: 0.9,
            decay_to_zero: 0.01,
            prune_threshold: 0.0,
            graylist_threshold: -100.0,
        }
    }
}

/// Per-neighbor score state.
#[derive(Clone, Debug, Default)]
pub struct PeerScore {
    /// Seconds this peer has been in our mesh (accumulated).
    pub time_in_mesh_secs: f64,
    /// First-delivery counter (decaying).
    pub first_deliveries: f64,
    /// Invalid-message counter (decaying).
    pub invalid_messages: f64,
    /// Behaviour penalty counter (decaying).
    pub behaviour_penalty: f64,
}

impl PeerScore {
    /// Computes the current score.
    pub fn score(&self, p: &ScoreParams) -> f64 {
        let p1 = self.time_in_mesh_secs.min(p.time_in_mesh_cap) * p.time_in_mesh_weight;
        let p2 = self.first_deliveries.min(p.first_message_cap) * p.first_message_weight;
        let p4 = self.invalid_messages * self.invalid_messages * p.invalid_message_weight;
        let pb = self.behaviour_penalty * self.behaviour_penalty * p.behaviour_penalty_weight;
        p1 + p2 + p4 + pb
    }

    /// Registers a first delivery (P2).
    pub fn on_first_delivery(&mut self) {
        self.first_deliveries += 1.0;
    }

    /// Registers an invalid message (P4).
    pub fn on_invalid_message(&mut self) {
        self.invalid_messages += 1.0;
    }

    /// Registers a behavioural violation.
    pub fn on_behaviour_penalty(&mut self) {
        self.behaviour_penalty += 1.0;
    }

    /// Accumulates mesh time (called at heartbeat while in mesh).
    pub fn on_mesh_time(&mut self, seconds: f64) {
        self.time_in_mesh_secs += seconds;
    }

    /// Applies the per-heartbeat decay.
    pub fn decay(&mut self, p: &ScoreParams) {
        for counter in [
            &mut self.first_deliveries,
            &mut self.invalid_messages,
            &mut self.behaviour_penalty,
        ] {
            *counter *= p.decay;
            if *counter < p.decay_to_zero {
                *counter = 0.0;
            }
        }
    }
}

/// Per-peer score table keyed by neighbor id: a sorted small-vec map.
///
/// A peer only ever scores its direct neighbors (8–16 entries), so a
/// contiguous sorted array with binary search beats a `HashMap` on the
/// per-RPC graylist check — no SipHash, one or two cache lines — and its
/// iteration order is naturally deterministic.
#[derive(Clone, Debug, Default)]
pub struct ScoreTable {
    entries: Vec<(usize, PeerScore)>,
}

impl ScoreTable {
    /// Read-only lookup.
    pub fn get(&self, peer: usize) -> Option<&PeerScore> {
        self.entries
            .binary_search_by_key(&peer, |(p, _)| *p)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Mutable lookup, inserting a default entry when absent.
    pub fn entry_or_default(&mut self, peer: usize) -> &mut PeerScore {
        match self.entries.binary_search_by_key(&peer, |(p, _)| *p) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (peer, PeerScore::default()));
                &mut self.entries[i].1
            }
        }
    }

    /// Mutable iteration over every tracked score (ascending peer id).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut PeerScore> {
        self.entries.iter_mut().map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_scores_zero() {
        let s = PeerScore::default();
        assert_eq!(s.score(&ScoreParams::default()), 0.0);
    }

    #[test]
    fn deliveries_raise_score() {
        let p = ScoreParams::default();
        let mut s = PeerScore::default();
        s.on_first_delivery();
        s.on_first_delivery();
        assert!(s.score(&p) > 0.0);
    }

    #[test]
    fn invalid_messages_dominate_quadratically() {
        let p = ScoreParams::default();
        let mut s = PeerScore::default();
        for _ in 0..50 {
            s.on_first_delivery();
        }
        let good = s.score(&p);
        for _ in 0..5 {
            s.on_invalid_message();
        }
        assert!(s.score(&p) < 0.0, "good was {good}, now {}", s.score(&p));
    }

    #[test]
    fn p2_is_capped() {
        let p = ScoreParams::default();
        let mut s = PeerScore::default();
        for _ in 0..10_000 {
            s.on_first_delivery();
        }
        assert!(
            s.score(&p)
                <= p.first_message_cap * p.first_message_weight
                    + p.time_in_mesh_cap * p.time_in_mesh_weight
        );
    }

    #[test]
    fn decay_forgives_over_time() {
        let p = ScoreParams::default();
        let mut s = PeerScore::default();
        for _ in 0..3 {
            s.on_invalid_message();
        }
        let before = s.score(&p);
        for _ in 0..100 {
            s.decay(&p);
        }
        assert!(s.score(&p) > before);
        assert_eq!(s.invalid_messages, 0.0, "decays to zero");
    }

    #[test]
    fn mesh_time_accumulates_capped() {
        let p = ScoreParams::default();
        let mut s = PeerScore::default();
        s.on_mesh_time(1_000_000.0);
        assert_eq!(s.score(&p), p.time_in_mesh_cap * p.time_in_mesh_weight);
    }
}
