//! Event-processing core shared by every `Scheduler` (see
//! [`crate::scheduler`]):
//! one `PeerSlot` per peer bundles the GossipSub protocol state with a
//! **private RNG stream** and a **private event-sequence counter**.
//!
//! Determinism contract (what makes serial and sharded execution
//! bit-identical):
//!
//! * a peer's state is mutated *only* while dispatching events targeted at
//!   that peer — handlers never touch another peer's slot;
//! * every random draw a handler makes comes from the target peer's own
//!   RNG, seeded from `(network seed, peer id)` — no draw order is shared
//!   across peers;
//! * every event carries a globally unique, totally ordered `EventKey`
//!   `(fire time, origin peer, per-origin sequence)`. Schedulers may
//!   interleave *different* peers' events however they like, but must
//!   deliver each peer's events in ascending key order — which both the
//!   serial global heap and the sharded per-shard heaps do, because heap
//!   pop order over unique keys is insertion-order independent.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use waku_metrics::LocalRecorder;

use crate::cache::{SeenSet, TopicCaches};
use crate::faults::fault_word;
use crate::instrument::engine_catalogue;
use crate::message::{Message, MessageId, PeerId, Rpc, SimTime, Topic, TrafficClass, Validation};
use crate::network::{NetworkConfig, PeerStats, Validator};
use crate::scoring::ScoreTable;

/// Globally unique, totally ordered event identity. The derived `Ord`
/// compares `(at, origin, seq)` lexicographically; `(origin, seq)` pairs
/// are never reused, so keys are unique and any heap pops them in the same
/// order regardless of how they were inserted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    /// Network time the event fires (ms).
    pub at: SimTime,
    /// Peer whose dispatch created the event.
    pub origin: PeerId,
    /// Origin-local scheduling sequence number.
    pub seq: u64,
}

/// The simulator's event alphabet.
#[derive(Clone, Debug)]
pub(crate) enum SimEvent {
    Rpc {
        from: PeerId,
        rpc: Rpc,
    },
    Heartbeat,
    Publish {
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
    },
    /// The peer rejoins after a scheduled crash (fault plane): in-memory
    /// gossip state is rebuilt cold, validator state is round-tripped
    /// through its snapshot path, and the heartbeat chain is re-armed.
    Restart,
    /// The peer's clock drift steps by `delta_ms` (fault plane). Applies
    /// even while the peer is down — a dead process's clock keeps
    /// drifting.
    ClockSkew {
        delta_ms: i64,
    },
}

/// An event routed to `target`'s shard and dispatched at `key.at`.
#[derive(Clone, Debug)]
pub(crate) struct QueuedEvent {
    pub key: EventKey,
    pub target: PeerId,
    pub event: SimEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.target == other.target
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.target).cmp(&(other.key, other.target))
    }
}

/// First-delivery record for latency analysis.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// The receiving peer.
    pub peer: PeerId,
    /// Network time of the delivery.
    pub at: SimTime,
    /// Network time the message was published.
    pub published_at: SimTime,
    /// Traffic class of the delivered message (lets fault scenarios
    /// measure per-class delivery inside a time window, e.g. re-convergence
    /// after a partition heals).
    pub class: TrafficClass,
}

/// SplitMix64 finalizer — decorrelates the per-peer RNG streams derived
/// from one network seed (and, via [`crate::faults::fault_word`], the
/// event-keyed fault streams).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for peer `p`'s private stream under network seed `seed`.
pub(crate) fn peer_stream_seed(seed: u64, peer: PeerId) -> u64 {
    mix64(seed ^ mix64(peer as u64 + 1))
}

/// One peer: protocol state + private RNG + private event counter.
/// `Send` end to end (the validator bound included) so shards can migrate
/// across pool workers between rounds.
pub(crate) struct PeerSlot {
    pub neighbors: Vec<PeerId>,
    pub subscriptions: BTreeSet<Topic>,
    pub mesh: BTreeMap<Topic, BTreeSet<PeerId>>,
    /// Generational duplicate-suppression set (rotated each heartbeat).
    pub seen: SeenSet,
    /// Per-topic mcache rings (rotated each heartbeat).
    pub cache: TopicCaches,
    pub scores: ScoreTable,
    pub validator: Option<Validator>,
    pub drift_ms: i64,
    pub stats: PeerStats,
    pub next_seq: u64,
    /// Scheduled downtime windows `[crash, restart)` from the fault plan
    /// (set at network construction; empty without faults). While down,
    /// every event addressed to this peer except `ClockSkew` is dropped.
    pub(crate) downtime: Vec<(SimTime, SimTime)>,
    /// Seen-set retention in heartbeat rotations — kept so a cold restart
    /// can rebuild the set with the window the network sized it with.
    seen_window: u32,
    /// First deliveries observed by this peer (merged across peers in
    /// peer-id order for network-wide latency stats).
    pub deliveries: Vec<(MessageId, DeliveryRecord)>,
    /// Per-topic `(bytes_in, bytes_out)` for topic-bearing RPCs — the
    /// label dimension the flat metric catalogue can't carry. Merged
    /// network-wide by `Network::topic_bytes`.
    pub(crate) topic_bytes: BTreeMap<Topic, (u64, u64)>,
    pub(crate) rng: StdRng,
    pub(crate) event_seq: u64,
    /// This peer's metrics recorder (engine catalogue: event counts and
    /// dwell times). Records only deterministic sim-domain values, so
    /// merged snapshots stay bit-identical across schedulers.
    pub(crate) recorder: LocalRecorder,
    /// Reusable buffer for forward-target lists — the accept path runs
    /// allocation-free in steady state.
    targets_scratch: Vec<PeerId>,
}

impl PeerSlot {
    /// `seen_window` is how many heartbeat rotations a seen-id survives —
    /// sized by the network from the gossip config so it outlives any
    /// path a message could still travel (mcache retention + gossip range
    /// + in-flight slack).
    pub(crate) fn new(seed: u64, peer: PeerId, drift_ms: i64, seen_window: u32) -> Self {
        PeerSlot {
            neighbors: Vec::new(),
            subscriptions: BTreeSet::new(),
            mesh: BTreeMap::new(),
            seen: SeenSet::new(seen_window),
            cache: TopicCaches::new(),
            scores: ScoreTable::default(),
            validator: None,
            drift_ms,
            stats: PeerStats::default(),
            next_seq: 0,
            downtime: Vec::new(),
            seen_window,
            deliveries: Vec::new(),
            topic_bytes: BTreeMap::new(),
            rng: StdRng::seed_from_u64(peer_stream_seed(seed, peer)),
            event_seq: 0,
            recorder: LocalRecorder::new(Arc::clone(&engine_catalogue().0)),
            targets_scratch: Vec::new(),
        }
    }

    pub(crate) fn score_of(&self, peer: PeerId, params: &crate::scoring::ScoreParams) -> f64 {
        self.scores
            .get(peer)
            .map(|s| s.score(params))
            .unwrap_or(0.0)
    }

    pub(crate) fn local_time(&self, now: SimTime) -> SimTime {
        (now as i64 + self.drift_ms).max(0) as SimTime
    }

    /// Is this peer inside a scheduled crash window at time `at`? The
    /// restart instant itself is *up* (`at < restart`), so the `Restart`
    /// event dispatches rather than being swallowed by its own downtime.
    pub(crate) fn is_down(&self, at: SimTime) -> bool {
        self.downtime
            .iter()
            .any(|&(crash, restart)| at >= crash && at < restart)
    }

    /// Mints the next event key for an event this peer schedules. Called
    /// both from dispatch handlers and from the network facade (external
    /// injections like `publish_at` and the initial heartbeats), so the
    /// key stream is identical no matter which scheduler runs the peer.
    pub(crate) fn next_key(&mut self, me: PeerId, at: SimTime) -> EventKey {
        let seq = self.event_seq;
        self.event_seq += 1;
        EventKey {
            at,
            origin: me,
            seq,
        }
    }

    fn schedule(
        &mut self,
        me: PeerId,
        now: SimTime,
        delay: SimTime,
        target: PeerId,
        event: SimEvent,
        out: &mut Vec<QueuedEvent>,
    ) {
        self.recorder.observe(engine_catalogue().1.dwell, delay);
        let key = self.next_key(me, now + delay);
        out.push(QueuedEvent { key, target, event });
    }

    /// Samples a one-way link latency from this peer's stream. Clamped to
    /// ≥ 1 ms so cross-peer events always land at least one quantum ahead
    /// (the sharded scheduler's correctness hinges on this floor).
    fn link_latency(&mut self, config: &NetworkConfig) -> SimTime {
        self.rng
            .gen_range(config.latency_min_ms..=config.latency_max_ms)
            .max(1)
    }

    fn send_rpc(
        &mut self,
        me: PeerId,
        now: SimTime,
        to: PeerId,
        rpc: Rpc,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        let size = rpc.size() as u64;
        self.stats.bytes_sent += size;
        if let Some(topic) = rpc.topic() {
            self.recorder
                .add(engine_catalogue().1.topic_bytes_out, size);
            self.topic_bytes.entry(topic).or_insert((0, 0)).1 += size;
        }
        let latency = self.link_latency(config);
        let plan = &config.faults;
        if !plan.affects_links() {
            self.recorder.observe(engine_catalogue().1.dwell, latency);
            out.push(QueuedEvent {
                key: self.next_key(me, now + latency),
                target: to,
                event: SimEvent::Rpc { from: me, rpc },
            });
            return;
        }
        // Event-keyed fault stream: the decision for this transmission is
        // a pure function of (fault seed, link, the sequence of the key
        // this send mints) — never of scheduler order.
        let word = fault_word(plan.seed, me, to, self.event_seq);
        if plan.severed(me, to, now) || plan.link.drops(word) {
            // A dropped transmission still consumes its sequence slot, so
            // the next send on this link draws a fresh fault word instead
            // of replaying the drop forever.
            self.event_seq += 1;
            self.recorder.inc(engine_catalogue().1.dropped_fault);
            return;
        }
        // Faults only ever ADD delay: `latency` already carries the
        // scheduler's quantum floor, so the Chandy–Misra lookahead bound
        // holds under any fault plan.
        let delay = latency + plan.link.extra_delay(word);
        if plan.link.duplicates(word) {
            let dup_delay = delay + plan.link.duplicate_lag(word);
            self.stats.bytes_sent += size;
            if let Some(topic) = rpc.topic() {
                self.recorder
                    .add(engine_catalogue().1.topic_bytes_out, size);
                self.topic_bytes.entry(topic).or_insert((0, 0)).1 += size;
            }
            self.recorder.observe(engine_catalogue().1.dwell, dup_delay);
            out.push(QueuedEvent {
                key: self.next_key(me, now + dup_delay),
                target: to,
                event: SimEvent::Rpc {
                    from: me,
                    rpc: rpc.clone(),
                },
            });
        }
        self.recorder.observe(engine_catalogue().1.dwell, delay);
        out.push(QueuedEvent {
            key: self.next_key(me, now + delay),
            target: to,
            event: SimEvent::Rpc { from: me, rpc },
        });
    }

    /// Dispatches one event targeted at this peer, appending any newly
    /// scheduled events (for any peer) to `out`.
    pub(crate) fn dispatch(
        &mut self,
        me: PeerId,
        now: SimTime,
        event: SimEvent,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        let ids = &engine_catalogue().1;
        self.recorder.inc(ids.events);
        // Crash windows (fault plane): a down peer loses every event
        // addressed to it — RPCs vanish in flight, its own heartbeat chain
        // dies, scheduled publishes are never sent. Clock-skew steps are
        // exempt (the clock drifts regardless of the process), and the
        // `Restart` instant itself is not "down" (see `is_down`). The
        // events counter above still ticks: schedulers count every pop,
        // and `gossip_events_total == events_processed()` must hold under
        // faults too. The drop predicate is pure simulation time, so it is
        // scheduler-invariant.
        if !matches!(event, SimEvent::ClockSkew { .. }) && self.is_down(now) {
            if matches!(event, SimEvent::Rpc { .. }) {
                self.recorder.inc(ids.dropped_fault);
            }
            return;
        }
        match event {
            SimEvent::Publish { topic, data, class } => {
                self.recorder.inc(ids.publishes);
                self.handle_local_publish(me, now, topic, data, class, config, out)
            }
            SimEvent::Heartbeat => {
                self.recorder.inc(ids.heartbeats);
                self.handle_heartbeat(me, now, config, out)
            }
            SimEvent::Rpc { from, rpc } => {
                self.recorder.inc(ids.rpcs);
                self.handle_rpc(me, now, from, rpc, config, out)
            }
            SimEvent::Restart => {
                self.recorder.inc(ids.restarts);
                self.handle_restart(me, now, out)
            }
            SimEvent::ClockSkew { delta_ms } => self.drift_ms += delta_ms,
        }
    }

    /// Cold rejoin after a scheduled crash. Everything a real node keeps
    /// in memory is rebuilt from scratch: the seen-set (so re-deliveries
    /// are accepted again and the peer can catch up), the mcache, the
    /// mesh views, and the peer scores. The validator survives through
    /// its *snapshot path* — `MessageAcceptor::on_restart` round-trips
    /// durable defense state (the RLN nullifier store persists like any
    /// on-disk database) while in-memory caches are lost. Mesh and
    /// message re-sync is emergent: the next heartbeats re-graft, and the
    /// existing IHAVE → IWANT machinery back-fills messages still inside
    /// neighbors' gossip windows.
    fn handle_restart(&mut self, me: PeerId, now: SimTime, out: &mut Vec<QueuedEvent>) {
        self.seen = SeenSet::new(self.seen_window);
        self.cache = TopicCaches::new();
        for members in self.mesh.values_mut() {
            members.clear();
        }
        self.scores = ScoreTable::default();
        let local = self.local_time(now);
        if let Some(v) = self.validator.as_mut() {
            v.on_restart(local);
        }
        // Re-arm the heartbeat chain that died during the downtime.
        self.schedule(me, now, 1, me, SimEvent::Heartbeat, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_local_publish(
        &mut self,
        me: PeerId,
        now: SimTime,
        topic: Topic,
        data: Vec<u8>,
        class: TrafficClass,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut message = Message::new(topic, data, me, seq, class);
        message.published_at = now;
        let message = Arc::new(message);
        self.seen.insert(&message.id);
        self.cache.insert(Arc::clone(&message));
        let mut targets = std::mem::take(&mut self.targets_scratch);
        self.mesh_targets(me, topic, None, config, &mut targets);
        for &t in &targets {
            self.send_rpc(me, now, t, Rpc::Publish(Arc::clone(&message)), config, out);
        }
        self.targets_scratch = targets;
    }

    /// Mesh peers for forwarding (fallback: random subscribed neighbors
    /// when the mesh hasn't formed yet). Fills the caller-provided buffer
    /// (the reusable [`Self::targets_scratch`]) instead of allocating.
    fn mesh_targets(
        &mut self,
        me: PeerId,
        topic: Topic,
        exclude: Option<PeerId>,
        config: &NetworkConfig,
        targets: &mut Vec<PeerId>,
    ) {
        targets.clear();
        if let Some(m) = self.mesh.get(&topic) {
            targets.extend(m.iter().copied());
        }
        if targets.is_empty() {
            targets.extend_from_slice(&self.neighbors);
            targets.shuffle(&mut self.rng);
            targets.truncate(config.gossip.d);
        }
        targets.retain(|t| Some(*t) != exclude && *t != me);
    }

    fn handle_rpc(
        &mut self,
        me: PeerId,
        now: SimTime,
        from: PeerId,
        rpc: Rpc,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        let size = rpc.size() as u64;
        self.stats.bytes_received += size;
        if let Some(topic) = rpc.topic() {
            self.recorder.add(engine_catalogue().1.topic_bytes_in, size);
            self.topic_bytes.entry(topic).or_insert((0, 0)).0 += size;
        }
        // Fast path: duplicate publishes (the dominant event class at
        // scale — every message arrives ~mesh-degree times) are absorbed
        // before the score lookup. Behavior is identical: a duplicate is
        // dropped with no state change whether or not the sender is
        // graylisted.
        if let Rpc::Publish(message) = &rpc {
            if !self.subscriptions.contains(&message.topic) || self.seen.contains(&message.id) {
                return;
            }
        }
        // Graylisted peers are ignored outright (scoring defense).
        let score = self.score_of(from, &config.scoring);
        if score < config.scoring.graylist_threshold {
            return;
        }
        match rpc {
            Rpc::Publish(message) => self.handle_publish(me, now, from, message, config, out),
            Rpc::IHave(topic, ids) => {
                if !self.subscriptions.contains(&topic) {
                    return;
                }
                let wanted: Vec<MessageId> = ids
                    .iter()
                    .filter(|id| !self.seen.contains(id))
                    .copied()
                    .collect();
                if !wanted.is_empty() {
                    self.send_rpc(me, now, from, Rpc::IWant(wanted), config, out);
                }
            }
            Rpc::IWant(ids) => {
                let messages: Vec<Arc<Message>> = ids
                    .iter()
                    .filter_map(|id| self.cache.find(id).cloned())
                    .collect();
                for m in messages {
                    self.send_rpc(me, now, from, Rpc::Publish(m), config, out);
                }
            }
            Rpc::Graft(topic) => {
                let subscribed = self.subscriptions.contains(&topic);
                let acceptable = score >= config.scoring.prune_threshold;
                if subscribed && acceptable {
                    self.mesh.entry(topic).or_default().insert(from);
                } else {
                    self.send_rpc(me, now, from, Rpc::Prune(topic), config, out);
                }
            }
            Rpc::Prune(topic) => {
                if let Some(mesh) = self.mesh.get_mut(&topic) {
                    mesh.remove(&from);
                }
            }
        }
    }

    fn handle_publish(
        &mut self,
        me: PeerId,
        now: SimTime,
        from: PeerId,
        message: Arc<Message>,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        if !self.subscriptions.contains(&message.topic) {
            return;
        }
        if self.seen.contains(&message.id) {
            return; // duplicate floods are absorbed by the seen-cache
        }
        // Validate (the RLN pipeline plugs in here, §III-F). The validator
        // is temporarily moved out so it can run while stats are updated.
        let local = self.local_time(now);
        let mut validator = self.validator.take();
        let verdict = match validator.as_mut() {
            Some(v) => {
                self.stats.validations += 1;
                v.validate(from, &message, local)
            }
            None => Validation::Accept,
        };
        self.validator = validator;
        match verdict {
            Validation::Accept => {
                self.seen.insert(&message.id);
                self.cache.insert(Arc::clone(&message));
                match message.class {
                    TrafficClass::Honest => self.stats.honest_delivered += 1,
                    TrafficClass::Spam => self.stats.spam_delivered += 1,
                    TrafficClass::Invalid => self.stats.invalid_delivered += 1,
                }
                self.scores.entry_or_default(from).on_first_delivery();
                self.deliveries.push((
                    message.id,
                    DeliveryRecord {
                        peer: me,
                        at: now,
                        published_at: message.published_at,
                        class: message.class,
                    },
                ));
                let mut targets = std::mem::take(&mut self.targets_scratch);
                self.mesh_targets(me, message.topic, Some(from), config, &mut targets);
                for &t in &targets {
                    if t != message.origin {
                        self.send_rpc(me, now, t, Rpc::Publish(message.clone()), config, out);
                    }
                }
                self.targets_scratch = targets;
            }
            Validation::Reject => {
                // Not marked seen: the spam signature (nullifier clash) must
                // keep triggering detection, and scoring punishes repeats.
                self.stats.rejected += 1;
                self.scores.entry_or_default(from).on_invalid_message();
            }
            Validation::Ignore => {
                self.seen.insert(&message.id);
                self.stats.ignored += 1;
            }
        }
    }

    fn handle_heartbeat(
        &mut self,
        me: PeerId,
        now: SimTime,
        config: &NetworkConfig,
        out: &mut Vec<QueuedEvent>,
    ) {
        // 0. let the validator observe the local clock: epoch-windowed
        // defense state (the RLN nullifier window) advances on rollover
        // even when no message arrives. Runs inside this peer's own
        // dispatch, so determinism across schedulers is preserved.
        let local = self.local_time(now);
        if let Some(v) = self.validator.as_mut() {
            v.on_heartbeat(local);
        }

        let heartbeat_ms = config.gossip.heartbeat_ms;
        let scoring = config.scoring;
        let (d, d_lo, d_hi, d_lazy) = (
            config.gossip.d,
            config.gossip.d_lo,
            config.gossip.d_hi,
            config.gossip.d_lazy,
        );

        let topics: Vec<Topic> = self.subscriptions.iter().copied().collect();
        for topic in topics {
            // 1. prune negative-score mesh members
            let mesh: Vec<PeerId> = self
                .mesh
                .get(&topic)
                .map(|m| m.iter().copied().collect())
                .unwrap_or_default();
            let mut to_prune = Vec::new();
            for m in &mesh {
                if self.score_of(*m, &scoring) < scoring.prune_threshold {
                    to_prune.push(*m);
                }
            }
            for m in to_prune {
                self.mesh.get_mut(&topic).expect("mesh exists").remove(&m);
                self.send_rpc(me, now, m, Rpc::Prune(topic), config, out);
            }

            // 2. degree maintenance
            let current: BTreeSet<PeerId> = self.mesh.get(&topic).cloned().unwrap_or_default();
            if current.len() < d_lo {
                let mut candidates: Vec<PeerId> = self
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|n| {
                        !current.contains(n)
                            && self.score_of(*n, &scoring) >= scoring.prune_threshold
                    })
                    .collect();
                candidates.shuffle(&mut self.rng);
                for c in candidates.into_iter().take(d - current.len()) {
                    self.mesh.entry(topic).or_default().insert(c);
                    self.send_rpc(me, now, c, Rpc::Graft(topic), config, out);
                }
            } else if current.len() > d_hi {
                let mut members: Vec<PeerId> = current.iter().copied().collect();
                members.shuffle(&mut self.rng);
                for m in members.into_iter().take(current.len() - d) {
                    self.mesh.get_mut(&topic).expect("mesh exists").remove(&m);
                    self.send_rpc(me, now, m, Rpc::Prune(topic), config, out);
                }
            }

            // 3. IHAVE gossip to non-mesh subscribed neighbors: one id
            // list per topic per heartbeat, refcount-shared across sends.
            if let Some(gossip_ids) = self.cache.gossip_ids(topic, config.gossip.mcache_gossip) {
                let mesh_now: BTreeSet<PeerId> = self.mesh.get(&topic).cloned().unwrap_or_default();
                let mut lazy: Vec<PeerId> = self
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|n| !mesh_now.contains(n))
                    .collect();
                lazy.shuffle(&mut self.rng);
                for l in lazy.into_iter().take(d_lazy) {
                    self.send_rpc(
                        me,
                        now,
                        l,
                        Rpc::IHave(topic, Arc::clone(&gossip_ids)),
                        config,
                        out,
                    );
                }
            }
        }

        // 4. mesh-time accrual + decay
        let mesh_members: Vec<PeerId> =
            self.mesh.values().flat_map(|m| m.iter().copied()).collect();
        for m in mesh_members {
            self.scores
                .entry_or_default(m)
                .on_mesh_time(heartbeat_ms as f64 / 1000.0);
        }
        for s in self.scores.values_mut() {
            s.decay(&scoring);
        }

        // 5. rotate the mcache windows and the seen-set generation
        self.cache.rotate(config.gossip.mcache_len);
        self.seen.rotate();

        self.schedule(me, now, heartbeat_ms, me, SimEvent::Heartbeat, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_keys_order_by_time_then_origin_then_seq() {
        let k = |at, origin, seq| EventKey { at, origin, seq };
        assert!(k(1, 9, 9) < k(2, 0, 0));
        assert!(k(5, 1, 9) < k(5, 2, 0));
        assert!(k(5, 1, 3) < k(5, 1, 4));
    }

    #[test]
    fn peer_streams_are_distinct_and_stable() {
        let a = peer_stream_seed(42, 0);
        let b = peer_stream_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, peer_stream_seed(42, 0));
        assert_ne!(a, peer_stream_seed(43, 0));
    }

    #[test]
    fn key_stream_is_per_peer_monotone() {
        let mut slot = PeerSlot::new(1, 3, 0, 10);
        let k1 = slot.next_key(3, 100);
        let k2 = slot.next_key(3, 100);
        assert!(k1 < k2);
        assert_eq!(k1.origin, 3);
    }
}
