//! Compact, generational message caches for the gossip hot path.
//!
//! At 10⁴ peers the engine's profile is dominated by duplicate
//! suppression: every peer receives every message `~d` times, and each
//! copy used to pay a SipHash over a 32-byte [`MessageId`] plus a probe
//! into an ever-growing `HashSet`, while every heartbeat re-scanned the
//! whole mcache to collect gossip ids. This module replaces both with
//! cache-line-friendly, allocation-free-in-steady-state structures:
//!
//! * [`SeenSet`] — an open-addressed **generational** table: a cache-
//!   line-aligned id array probed by a 64-bit fingerprint of the
//!   (keccak-derived, uniformly distributed) message id, paired with a
//!   dense `u32` generation array. The set rotates once per heartbeat;
//!   entries expire lazily after a configurable window of generations
//!   and their slots are reclaimed in place — steady-state inserts never
//!   allocate, and the table never grows past the live window's
//!   footprint.
//! * [`TopicCaches`] — the mcache reorganized **per topic**: each topic
//!   keeps its own ring of heartbeat windows with a contiguous id
//!   side-array, so heartbeat gossip is a memcpy instead of a scan-and-
//!   filter over every cached message, and the assembled id list is
//!   shared as one `Arc<[MessageId]>` across all `d_lazy` IHAVE sends.
//!
//! Both structures are strictly per-peer (the engine's share-nothing
//! rule), and every operation is a pure function of the peer's event
//! history, so serial and sharded execution stay bit-identical.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::message::{Message, MessageId, Topic};

/// 64-bit fingerprint of a message id: the leading 8 bytes. Ids are
/// keccak256 outputs, so the prefix is already uniform — no extra mixing
/// is needed for distribution, only for slot indexing (see [`slot_of`]).
#[inline]
fn fingerprint(id: &MessageId) -> u64 {
    u64::from_le_bytes(id.0[..8].try_into().expect("8-byte prefix"))
}

/// Fibonacci-hash the fingerprint into a table of `1 << log2_cap` slots.
#[inline]
fn slot_of(fp: u64, shift: u32) -> usize {
    (fp.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

const EMPTY_GEN: u32 = 0;
/// Initial table capacity (power of two).
const MIN_CAP: usize = 64;

/// Generational duplicate-suppression set (the per-peer `seen` cache).
///
/// Semantics: an id [`SeenSet::insert`]ed at generation `g` answers
/// [`SeenSet::contains`] with `true` until `window` calls to
/// [`SeenSet::rotate`] have passed (i.e. while `current_gen - g <
/// window`), then expires. The engine rotates once per heartbeat with a
/// window comfortably larger than the mcache lifetime, so no message can
/// outlive its own gossipability and sneak back in as "new".
///
/// Layout: two parallel open-addressed arrays — a 32-byte-aligned id
/// array (each id sits inside one cache line, so a successful probe
/// touches exactly one line of bulk data) and a dense `u32` generation
/// array (4 KB at steady-state capacity — effectively free). At 10⁴
/// peers every IHAVE scan probes ~90 ids against a cold table; one line
/// per probe instead of slot-plus-arena halves the memory traffic of
/// the engine's single hottest loop. Expiry is lazy: rotation just bumps
/// the generation counter, and stale slots are reclaimed by probe-path
/// reuse or the occasional rebuild.
pub struct SeenSet {
    /// Slot → id (meaningful only where `gens[slot]` is live).
    ids: Vec<MessageId>,
    /// Slot → insertion generation (0 = never used).
    gens: Vec<u32>,
    /// `64 - log2(capacity)` — the Fibonacci-hash shift.
    shift: u32,
    /// Occupied slots (live + expired-but-unreclaimed).
    occupied: usize,
    /// Current generation (starts at 1; 0 marks empty slots).
    gen: u32,
    /// Generations an entry stays visible.
    window: u32,
}

impl SeenSet {
    /// Creates a set whose entries survive `window` rotations (≥ 1).
    pub fn new(window: u32) -> Self {
        SeenSet {
            ids: vec![MessageId([0; 32]); MIN_CAP],
            gens: vec![EMPTY_GEN; MIN_CAP],
            shift: 64 - MIN_CAP.trailing_zeros(),
            occupied: 0,
            gen: 1,
            window: window.max(1),
        }
    }

    #[inline]
    fn is_live(&self, slot_gen: u32) -> bool {
        slot_gen != EMPTY_GEN && self.gen.wrapping_sub(slot_gen) < self.window
    }

    /// Is `id` currently remembered?
    #[inline]
    pub fn contains(&self, id: &MessageId) -> bool {
        let mask = self.gens.len() - 1;
        let mut i = slot_of(fingerprint(id), self.shift);
        loop {
            let idx = i & mask;
            let slot_gen = self.gens[idx];
            if slot_gen == EMPTY_GEN {
                return false;
            }
            // Full-id comparison — colliding fingerprints are never
            // conflated; the first-8-byte mismatch rejects fast.
            if self.ids[idx] == *id && self.is_live(slot_gen) {
                return true;
            }
            i += 1;
        }
    }

    /// Inserts `id` at the current generation. Returns `true` if it was
    /// not already live. (Expired duplicates re-insert as fresh entries.)
    pub fn insert(&mut self, id: &MessageId) -> bool {
        if (self.occupied + 1) * 4 > self.gens.len() * 3 {
            self.rebuild();
        }
        let mask = self.gens.len() - 1;
        let mut i = slot_of(fingerprint(id), self.shift);
        // First expired slot on the probe path — reusable without
        // breaking any live entry's probe chain (chains only terminate at
        // truly empty slots).
        let mut reuse: Option<usize> = None;
        let target = loop {
            let idx = i & mask;
            let slot_gen = self.gens[idx];
            if slot_gen == EMPTY_GEN {
                break reuse.unwrap_or(idx);
            }
            if self.is_live(slot_gen) {
                if self.ids[idx] == *id {
                    return false;
                }
            } else if reuse.is_none() {
                reuse = Some(idx);
            }
            i += 1;
        };
        if self.gens[target] == EMPTY_GEN {
            self.occupied += 1;
        }
        self.ids[target] = *id;
        self.gens[target] = self.gen;
        true
    }

    /// Advances one generation: entries inserted `window` rotations ago
    /// expire (lazily — no per-entry work, no allocation).
    pub fn rotate(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == EMPTY_GEN {
            // u32 wrap (≈ 4 billion heartbeats): restart cleanly rather
            // than let generation 0 alias the empty marker.
            self.gens.iter_mut().for_each(|g| *g = EMPTY_GEN);
            self.occupied = 0;
            self.gen = 1;
        }
    }

    /// Number of live entries (O(capacity) — diagnostics and tests).
    pub fn len(&self) -> usize {
        self.gens.iter().filter(|&&g| self.is_live(g)).count()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current table capacity in slots (diagnostics and tests).
    pub fn capacity(&self) -> usize {
        self.gens.len()
    }

    /// Rehashes live entries into a table sized for ≤ 50% load, dropping
    /// expired slots.
    fn rebuild(&mut self) {
        let live: Vec<(MessageId, u32)> = self
            .gens
            .iter()
            .zip(&self.ids)
            .filter(|(&g, _)| self.is_live(g))
            .map(|(&g, id)| (*id, g))
            .collect();
        let cap = (live.len() * 2 + 1).next_power_of_two().max(MIN_CAP);
        self.ids = vec![MessageId([0; 32]); cap];
        self.gens = vec![EMPTY_GEN; cap];
        self.shift = 64 - cap.trailing_zeros();
        self.occupied = live.len();
        let mask = cap - 1;
        for (id, g) in live {
            let mut i = slot_of(fingerprint(&id), self.shift);
            while self.gens[i & mask] != EMPTY_GEN {
                i += 1;
            }
            self.ids[i & mask] = id;
            self.gens[i & mask] = g;
        }
    }
}

/// One heartbeat window of one topic's cache: the messages that arrived
/// in that window plus a contiguous side-array of their ids (the gossip
/// hot path only needs ids, and a dense copy beats striding through
/// `Message` structs).
#[derive(Default)]
struct CacheWindow {
    msgs: Vec<Arc<Message>>,
    ids: Vec<MessageId>,
}

impl CacheWindow {
    fn clear(&mut self) {
        self.msgs.clear();
        self.ids.clear();
    }
}

/// Per-topic message cache ring. `windows[0]` is the **open** window
/// (messages accepted since the last heartbeat); `windows[1..]` are
/// completed windows, newest first — the gossip / retrieval range.
#[derive(Default)]
struct TopicCache {
    windows: VecDeque<CacheWindow>,
}

/// The per-peer mcache, organized per topic (see module docs).
#[derive(Default)]
pub struct TopicCaches {
    topics: BTreeMap<Topic, TopicCache>,
}

impl TopicCaches {
    /// Creates an empty cache set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caches a message in its topic's open window.
    pub fn insert(&mut self, message: Arc<Message>) {
        let cache = self.topics.entry(message.topic).or_default();
        if cache.windows.is_empty() {
            cache.windows.push_front(CacheWindow::default());
        }
        let window = &mut cache.windows[0];
        window.ids.push(message.id);
        window.msgs.push(message);
    }

    /// Looks a message up by id across every topic and window (IWANT
    /// service). Ids are content-derived and unique, so scan order does
    /// not matter; windows are newest-first, matching the old mcache.
    pub fn find(&self, id: &MessageId) -> Option<&Arc<Message>> {
        self.topics.values().find_map(|cache| {
            cache
                .windows
                .iter()
                .flat_map(|w| w.msgs.iter())
                .find(|m| m.id == *id)
        })
    }

    /// Ids to gossip for `topic`: every message in the most recent
    /// `gossip_windows` **completed** windows (the open window is not
    /// gossiped — it rotates first, exactly like the original mcache).
    /// Returns `None` when there is nothing to advertise; the `Arc` is
    /// shared across all IHAVE sends of one heartbeat.
    pub fn gossip_ids(&self, topic: Topic, gossip_windows: usize) -> Option<Arc<[MessageId]>> {
        let cache = self.topics.get(&topic)?;
        let total: usize = cache
            .windows
            .iter()
            .skip(1)
            .take(gossip_windows)
            .map(|w| w.ids.len())
            .sum();
        if total == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(total);
        for w in cache.windows.iter().skip(1).take(gossip_windows) {
            out.extend_from_slice(&w.ids);
        }
        Some(out.into())
    }

    /// Heartbeat rotation: every topic's open window is sealed and a new
    /// one opened; at most `keep` completed windows are retained. The
    /// oldest window's buffers are recycled into the new open window, so
    /// steady-state rotation does not allocate.
    pub fn rotate(&mut self, keep: usize) {
        for cache in self.topics.values_mut() {
            let fresh = if cache.windows.len() > keep {
                let mut recycled = cache.windows.pop_back().expect("non-empty");
                recycled.clear();
                // Drop any further excess (keep shrank mid-run).
                cache.windows.truncate(keep);
                recycled
            } else {
                CacheWindow::default()
            };
            cache.windows.push_front(fresh);
        }
    }

    /// Total cached messages across topics and windows (diagnostics).
    pub fn len(&self) -> usize {
        self.topics
            .values()
            .flat_map(|c| c.windows.iter())
            .map(|w| w.msgs.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TrafficClass;

    fn id(byte: u8) -> MessageId {
        MessageId([byte; 32])
    }

    /// Two ids with identical 64-bit fingerprints but different tails.
    fn colliding_pair() -> (MessageId, MessageId) {
        let mut a = [7u8; 32];
        let mut b = [7u8; 32];
        a[31] = 1;
        b[31] = 2;
        (MessageId(a), MessageId(b))
    }

    #[test]
    fn insert_then_contains() {
        let mut s = SeenSet::new(4);
        assert!(!s.contains(&id(1)));
        assert!(s.insert(&id(1)));
        assert!(s.contains(&id(1)));
        assert!(!s.insert(&id(1)), "second insert reports duplicate");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn entries_expire_after_window_rotations() {
        let mut s = SeenSet::new(3);
        s.insert(&id(9));
        for _ in 0..2 {
            s.rotate();
            assert!(s.contains(&id(9)), "still inside the window");
        }
        s.rotate();
        assert!(!s.contains(&id(9)), "expired after `window` rotations");
        // Expired ids re-insert as fresh.
        assert!(s.insert(&id(9)));
        assert!(s.contains(&id(9)));
    }

    #[test]
    fn colliding_fingerprints_stay_distinct() {
        let (a, b) = colliding_pair();
        assert_eq!(
            super::fingerprint(&a),
            super::fingerprint(&b),
            "test ids must actually collide"
        );
        let mut s = SeenSet::new(4);
        assert!(s.insert(&a));
        assert!(!s.contains(&b), "collision must not alias");
        assert!(s.insert(&b));
        assert!(s.contains(&a) && s.contains(&b));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn growth_preserves_membership() {
        let mut s = SeenSet::new(2);
        let ids: Vec<MessageId> = (0..500u16)
            .map(|i| {
                let mut bytes = [0u8; 32];
                bytes[..2].copy_from_slice(&i.to_le_bytes());
                bytes[31] = 0xAB;
                MessageId(bytes)
            })
            .collect();
        for i in &ids {
            assert!(s.insert(i));
        }
        assert!(s.capacity() >= 512, "table grew");
        for i in &ids {
            assert!(s.contains(i));
        }
        assert_eq!(s.len(), ids.len());
    }

    #[test]
    fn expired_slots_are_reused_without_breaking_chains() {
        let mut s = SeenSet::new(1); // every rotation expires everything
        for round in 0..50u8 {
            for k in 0..40u8 {
                s.insert(&{
                    let mut b = [0u8; 32];
                    b[0] = round;
                    b[1] = k;
                    MessageId(b)
                });
            }
            s.rotate();
        }
        // With window 1 and ≤ 40 live entries, the table must not have
        // ballooned: rebuilds reclaim expired slots.
        assert!(s.capacity() <= 256, "capacity {} runaway", s.capacity());
    }

    fn msg(topic: Topic, tag: u8) -> Arc<Message> {
        Arc::new(Message::new(
            topic,
            vec![tag],
            0,
            tag as u64,
            TrafficClass::Honest,
        ))
    }

    #[test]
    fn open_window_is_not_gossiped_until_rotated() {
        let mut c = TopicCaches::new();
        let m = msg(1, 1);
        let mid = m.id;
        c.insert(m);
        assert!(c.gossip_ids(1, 3).is_none(), "open window not advertised");
        c.rotate(5);
        let ids = c.gossip_ids(1, 3).expect("advertised after rotation");
        assert_eq!(&*ids, &[mid]);
        assert!(c.find(&mid).is_some(), "still retrievable");
    }

    #[test]
    fn gossip_range_and_retention_match_mcache_semantics() {
        let mut c = TopicCaches::new();
        let mut ids = Vec::new();
        // One message per window, 8 windows.
        for tag in 0..8u8 {
            let m = msg(1, tag);
            ids.push(m.id);
            c.insert(m);
            c.rotate(5);
        }
        // Gossip = 3 newest completed windows: tags 7, 6, 5 (newest first).
        let gossip = c.gossip_ids(1, 3).expect("gossip ids");
        assert_eq!(&*gossip, &[ids[7], ids[6], ids[5]]);
        // Retention = 5 completed windows: tags 3..=7 retrievable, 0..=2 gone.
        for (tag, id) in ids.iter().enumerate() {
            assert_eq!(c.find(id).is_some(), tag >= 3, "tag {tag}");
        }
    }

    #[test]
    fn topics_are_cached_independently() {
        let mut c = TopicCaches::new();
        let a = msg(1, 1);
        let b = msg(2, 2);
        let (ia, ib) = (a.id, b.id);
        c.insert(a);
        c.insert(b);
        c.rotate(5);
        assert_eq!(&*c.gossip_ids(1, 3).unwrap(), &[ia]);
        assert_eq!(&*c.gossip_ids(2, 3).unwrap(), &[ib]);
        assert!(c.gossip_ids(3, 3).is_none());
        assert!(c.find(&ia).is_some() && c.find(&ib).is_some());
    }
}
