//! The deterministic fault-injection plane: a seeded [`FaultPlan`] woven
//! through the engine so scenarios run over *unreliable* links, mortal
//! peers, and skewed clocks — the conditions the paper's spam-protection
//! guarantees actually have to survive.
//!
//! Four fault families, one determinism contract:
//!
//! * **link faults** ([`LinkFaults`]) — per-transmission drop, duplicate,
//!   extra jitter, and reorder spikes, applied in `PeerSlot::send_rpc`;
//! * **partitions** ([`PartitionSpec`]) — scheduled bisections of the peer
//!   id space that sever every crossing link until they heal;
//! * **crash/restart** ([`CrashSpec`]) — peers go dark (events addressed
//!   to them are dropped), then rejoin cold with all in-memory gossip
//!   state rebuilt and validator state restored from a
//!   `waku_rln::NullifierStore`-style snapshot;
//! * **clock skew** ([`SkewSpec`]) — scheduled steps of a peer's clock
//!   drift, forwards or backwards, while the simulation runs.
//!
//! ## Determinism invariant
//!
//! Every stochastic fault decision is a pure function of
//! `(fault seed, link, event sequence)` — the sequence number of the key
//! the transmission mints — via the same SplitMix64 finalizer that
//! decorrelates the per-peer RNG streams (`fault_word`). Per-peer event
//! sequences evolve identically under every scheduler (a peer dispatches
//! its own events in key order, and only its own dispatch mutates its
//! slot), so fault streams are **event-keyed, never scheduler-ordered**:
//! a seeded faulty run is bit-identical across the serial and sharded
//! schedulers at any shard/thread count. A dropped transmission still
//! consumes its sequence slot, so later sends on the same link draw fresh
//! fault words instead of replaying the drop forever.
//!
//! Timed faults (partition windows, crash intervals, skew steps) are
//! keyed on simulation time alone; crash/restart and skew events are
//! minted from the target peer's own key stream at network construction,
//! exactly like the heartbeat stagger.

use crate::engine::mix64;
use crate::message::{PeerId, SimTime};

/// Per-transmission link-fault rates, in permille (so integer math keeps
/// the decision exact and platform-independent). The default is a no-op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability (‰) a transmission is silently dropped.
    pub drop_permille: u16,
    /// Probability (‰) a transmission is delivered twice.
    pub duplicate_permille: u16,
    /// Probability (‰) a transmission takes a reorder spike of
    /// [`LinkFaults::reorder_delay_ms`] extra delay, letting later sends
    /// on the same link overtake it.
    pub reorder_permille: u16,
    /// Extra uniform jitter in `[0, extra_jitter_ms]` added to every
    /// surviving transmission.
    pub extra_jitter_ms: u64,
    /// The delay spike applied to reordered transmissions (ms).
    pub reorder_delay_ms: u64,
}

impl LinkFaults {
    /// True when no link fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.drop_permille == 0
            && self.duplicate_permille == 0
            && (self.reorder_permille == 0 || self.reorder_delay_ms == 0)
            && self.extra_jitter_ms == 0
    }

    /// Does the transmission with this fault word get dropped?
    pub(crate) fn drops(&self, word: u64) -> bool {
        self.drop_permille > 0 && word % 1000 < self.drop_permille as u64
    }

    /// Does the transmission with this fault word get duplicated?
    pub(crate) fn duplicates(&self, word: u64) -> bool {
        self.duplicate_permille > 0 && mix64(word ^ 1) % 1000 < self.duplicate_permille as u64
    }

    /// Additive delay (jitter + reorder spike) for a surviving
    /// transmission. Faults only ever *add* to the sampled link latency —
    /// which already respects the scheduler's quantum floor — so the
    /// Chandy–Misra lookahead bound stays valid under any plan.
    pub(crate) fn extra_delay(&self, word: u64) -> SimTime {
        let mut extra = 0;
        if self.extra_jitter_ms > 0 {
            extra += mix64(word ^ 2) % (self.extra_jitter_ms + 1);
        }
        if self.reorder_delay_ms > 0
            && self.reorder_permille > 0
            && mix64(word ^ 3) % 1000 < self.reorder_permille as u64
        {
            extra += self.reorder_delay_ms;
        }
        extra
    }

    /// How far behind its primary copy a duplicate trails (≥ 1 ms so the
    /// two copies are distinct arrivals).
    pub(crate) fn duplicate_lag(&self, word: u64) -> SimTime {
        1 + mix64(word ^ 4) % (self.extra_jitter_ms + self.reorder_delay_ms + 1)
    }
}

/// A scheduled network partition: while `start_ms ≤ now < end_ms`, every
/// link between a peer with id `< cut` and a peer with id `≥ cut` is
/// severed (checked at send time on the sender's clock). The partition
/// heals at `end_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Partition onset (network time, ms).
    pub start_ms: SimTime,
    /// Healing time (network time, ms; exclusive).
    pub end_ms: SimTime,
    /// The bisection point of the peer id space.
    pub cut: usize,
}

impl PartitionSpec {
    /// Is the `a → b` link severed by this partition at time `at`?
    pub fn severs(&self, a: PeerId, b: PeerId, at: SimTime) -> bool {
        at >= self.start_ms && at < self.end_ms && (a < self.cut) != (b < self.cut)
    }
}

/// A scheduled peer crash: the peer is down (all events addressed to it
/// are dropped, so it neither routes nor publishes) for
/// `crash_ms ≤ now < restart_ms`, then rejoins cold — see the engine's
/// restart handler for exactly which state survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The crashing peer.
    pub peer: PeerId,
    /// Crash time (network time, ms).
    pub crash_ms: SimTime,
    /// Restart time (network time, ms). `SimTime::MAX` = never rejoins.
    pub restart_ms: SimTime,
}

/// A scheduled clock-skew step: at `at_ms` the peer's clock drift changes
/// by `delta_ms` (negative = the clock steps backwards). Skew steps apply
/// even while the peer is crashed — a dead process's clock keeps
/// drifting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkewSpec {
    /// The affected peer.
    pub peer: PeerId,
    /// When the step happens (network time, ms).
    pub at_ms: SimTime,
    /// Signed drift change (ms).
    pub delta_ms: i64,
}

/// A complete seeded fault plan. The default plan is empty: the network
/// behaves exactly as it did before the fault plane existed (the no-fault
/// fast path is byte-identical).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the event-keyed fault streams (independent of the network
    /// seed, so the same topology can be re-run under different fault
    /// draws).
    pub seed: u64,
    /// Per-link stochastic faults.
    pub link: LinkFaults,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Scheduled crash/restart timelines.
    pub crashes: Vec<CrashSpec>,
    /// Scheduled clock-skew steps.
    pub skews: Vec<SkewSpec>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.link.is_noop()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.skews.is_empty()
    }

    /// True when transmissions need the fault path at all (stochastic
    /// link faults or at least one partition).
    pub(crate) fn affects_links(&self) -> bool {
        !self.link.is_noop() || !self.partitions.is_empty()
    }

    /// Is the `a → b` link severed by any partition at time `at`?
    pub fn severed(&self, a: PeerId, b: PeerId, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, at))
    }

    /// Partitions whose healing time has passed by `now`.
    pub fn partitions_healed(&self, now: SimTime) -> u64 {
        self.partitions.iter().filter(|p| p.end_ms <= now).count() as u64
    }

    /// Cumulative skew applied to `peer`'s clock by time `at` — what a
    /// workload generator must add to the construction-time drift to
    /// stamp epochs from the clock the peer will actually have.
    pub fn skew_at(&self, peer: PeerId, at: SimTime) -> i64 {
        self.skews
            .iter()
            .filter(|s| s.peer == peer && s.at_ms <= at)
            .map(|s| s.delta_ms)
            .sum()
    }

    /// The time the last scheduled disruption ends: the latest partition
    /// heal or peer restart (0 for plans with neither). Scenario layers
    /// use this as the re-convergence cutoff.
    pub fn last_disruption_ms(&self) -> SimTime {
        let heal = self.partitions.iter().map(|p| p.end_ms).max().unwrap_or(0);
        let rejoin = self
            .crashes
            .iter()
            .map(|c| c.restart_ms)
            .filter(|&r| r < SimTime::MAX)
            .max()
            .unwrap_or(0);
        heal.max(rejoin)
    }

    /// Checks the plan against a network size.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range peer ids, inverted crash windows, or
    /// overlapping crash windows for the same peer.
    pub fn validate(&self, peers: usize) {
        for p in &self.partitions {
            assert!(p.start_ms < p.end_ms, "partition window inverted: {p:?}");
            assert!(
                p.cut > 0 && p.cut < peers,
                "partition cut out of range: {p:?}"
            );
        }
        let mut windows: Vec<(PeerId, SimTime, SimTime)> = Vec::new();
        for c in &self.crashes {
            assert!(c.peer < peers, "crash peer out of range: {c:?}");
            assert!(c.crash_ms < c.restart_ms, "crash window inverted: {c:?}");
            windows.push((c.peer, c.crash_ms, c.restart_ms));
        }
        windows.sort_unstable();
        for w in windows.windows(2) {
            assert!(
                w[0].0 != w[1].0 || w[0].2 <= w[1].1,
                "overlapping crash windows for peer {}: {:?}",
                w[0].0,
                &w[..2]
            );
        }
        for s in &self.skews {
            assert!(s.peer < peers, "skew peer out of range: {s:?}");
        }
    }
}

/// The event-keyed fault word for one transmission: a pure function of
/// the plan seed, the directed link, and the sequence number of the event
/// key the transmission mints. All per-transmission fault decisions
/// (drop, duplicate, jitter, reorder) derive from this one word.
pub(crate) fn fault_word(seed: u64, from: PeerId, to: PeerId, seq: u64) -> u64 {
    let link = ((from as u64) << 32) | (to as u64 & 0xFFFF_FFFF);
    mix64(mix64(seed ^ 0xFA17_F1A5) ^ mix64(link) ^ mix64(seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_noop() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.affects_links());
        assert!(!plan.severed(0, 1, 500));
        assert_eq!(plan.partitions_healed(u64::MAX), 0);
        assert_eq!(plan.last_disruption_ms(), 0);
    }

    #[test]
    fn fault_words_differ_by_link_and_seq() {
        let w = fault_word(7, 3, 4, 0);
        assert_ne!(w, fault_word(7, 4, 3, 0), "direction matters");
        assert_ne!(w, fault_word(7, 3, 4, 1), "sequence matters");
        assert_ne!(w, fault_word(8, 3, 4, 0), "seed matters");
        assert_eq!(w, fault_word(7, 3, 4, 0), "and the word is pure");
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let faults = LinkFaults {
            drop_permille: 200,
            ..LinkFaults::default()
        };
        let dropped = (0..10_000)
            .filter(|&seq| faults.drops(fault_word(1, 0, 1, seq)))
            .count();
        assert!(
            (1_700..=2_300).contains(&dropped),
            "20% nominal, got {dropped}/10000"
        );
    }

    #[test]
    fn partition_severs_only_crossing_links_inside_the_window() {
        let p = PartitionSpec {
            start_ms: 1_000,
            end_ms: 2_000,
            cut: 5,
        };
        assert!(p.severs(2, 7, 1_500));
        assert!(p.severs(7, 2, 1_500), "both directions");
        assert!(!p.severs(2, 3, 1_500), "same side");
        assert!(!p.severs(2, 7, 999), "before onset");
        assert!(!p.severs(2, 7, 2_000), "healed (end exclusive)");
    }

    #[test]
    fn skew_accumulates_in_time_order() {
        let plan = FaultPlan {
            skews: vec![
                SkewSpec {
                    peer: 3,
                    at_ms: 1_000,
                    delta_ms: 500,
                },
                SkewSpec {
                    peer: 3,
                    at_ms: 2_000,
                    delta_ms: -1_500,
                },
                SkewSpec {
                    peer: 4,
                    at_ms: 0,
                    delta_ms: 9_999,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.skew_at(3, 999), 0);
        assert_eq!(plan.skew_at(3, 1_000), 500);
        assert_eq!(plan.skew_at(3, 5_000), -1_000);
        assert_eq!(plan.skew_at(5, 5_000), 0);
    }

    #[test]
    fn last_disruption_takes_the_later_of_heal_and_rejoin() {
        let plan = FaultPlan {
            partitions: vec![PartitionSpec {
                start_ms: 1_000,
                end_ms: 4_000,
                cut: 2,
            }],
            crashes: vec![
                CrashSpec {
                    peer: 0,
                    crash_ms: 2_000,
                    restart_ms: 6_000,
                },
                CrashSpec {
                    peer: 1,
                    crash_ms: 0,
                    restart_ms: SimTime::MAX, // never rejoins: not a cutoff
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.last_disruption_ms(), 6_000);
    }

    #[test]
    #[should_panic(expected = "overlapping crash windows")]
    fn overlapping_crash_windows_are_rejected() {
        let plan = FaultPlan {
            crashes: vec![
                CrashSpec {
                    peer: 2,
                    crash_ms: 1_000,
                    restart_ms: 3_000,
                },
                CrashSpec {
                    peer: 2,
                    crash_ms: 2_000,
                    restart_ms: 4_000,
                },
            ],
            ..FaultPlan::default()
        };
        plan.validate(10);
    }
}
