//! Multi-process transport for the sharded simulation: one coordinator
//! plus N worker processes exchange length-prefixed binary frames over
//! `std::net` TCP, lifting the in-process scheduler's quantum-boundary
//! outbox drain onto real IPC without changing semantics.
//!
//! ## Why the distributed run is bit-identical to the in-process one
//!
//! Every worker replays the *full* deterministic network construction
//! (drift draws, topology, heartbeat stagger, fault timeline, workload
//! injection), so all per-peer RNG streams and event-key streams are
//! identical in every process; a worker simply drops enqueued events it
//! does not own. The coordinator then re-runs the exact round loop of
//! `ShardedScheduler::run_until` — same per-shard
//! heads, same `fill_horizons` call, same `t + 1`
//! cap, same fixed-shard-order outbox drain — with one difference that
//! cannot be observed: cross-worker events spend one round inside the
//! coordinator's pending buffers. The coordinator folds the minimum
//! pending fire time into its per-shard heads, so the heads, horizons,
//! and round boundaries it computes equal the in-process ones value for
//! value, and heap pop order over unique `(at, origin, seq)` keys is
//! insertion-order independent, so the extra hop cannot reorder
//! anything.
//!
//! ## Frame format
//!
//! `[u32 LE payload length][u8 tag][payload…]`, everything little
//! endian, no self-describing metadata (the protocol is fixed). The
//! codec is hand-rolled (no serde in the workspace) and total: any byte
//! string either decodes or returns a structured [`CodecError`] — never
//! a panic, never a read past the buffer, never an attacker-controlled
//! allocation (length fields are sanity-checked against the bytes
//! actually present).
//!
//! ## Protocol
//!
//! ```text
//! worker                          coordinator
//!   Hello{worker, workers}  ──▶
//!                           ◀──  Config(opaque scenario bytes)
//!   Ready{dist, cyc, heads} ──▶        (matrix cross-checked, heads merged)
//!   ┌─────────────────── per barrier round ───────────────────┐
//!                           ◀──  Round{horizons, events}
//!   RoundResult{processed,  ──▶        (heads refreshed, events routed)
//!               heads, events}
//!   └──────────────── until every head > t ───────────────────┘
//!                           ◀──  Finish
//!   Snapshot(metric bytes)  ──▶
//!   Report(fragment bytes)  ──▶
//! ```

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::{EventKey, QueuedEvent, SimEvent};
use crate::message::{Message, MessageId, PeerId, Rpc, SimTime, Topic, TrafficClass};
use crate::network::Network;
use crate::scheduler::{fill_horizons, worker_shard_range, Lookahead, FAR};

/// Hard ceiling on a frame's payload length (256 MiB): a corrupted
/// length header is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// Longest decoded byte-string / collection permitted inside a frame
/// (same bound — inner lengths are additionally checked against the
/// bytes actually remaining).
const MAX_VEC: usize = MAX_FRAME_LEN;

/// A frame (or frame payload) failed to decode.
///
/// Decoding is total: any input yields a frame or one of these — never a
/// panic, never an over-read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced structure was complete.
    Truncated,
    /// A frame/payload/RPC tag byte held an unknown value.
    BadTag(u8),
    /// A length field exceeded [`MAX_FRAME_LEN`] or the bytes present.
    Oversized,
    /// Bytes remained after the frame's payload was fully decoded.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::Oversized => write!(f, "frame length field exceeds sanity bound"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after frame payload"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A distributed-run failure: I/O, codec, protocol violation, or a
/// worker process dying mid-run.
#[derive(Debug)]
pub enum TransportError {
    /// A socket operation failed.
    Io {
        /// What the coordinator/worker was doing (e.g. `"read RoundResult"`).
        stage: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A frame failed to decode.
    Codec(CodecError),
    /// The peer spoke the protocol wrong (unexpected frame, matrix
    /// mismatch, bad worker id).
    Protocol(String),
    /// A worker process exited before the run completed.
    WorkerExited {
        /// The worker's index.
        worker: usize,
        /// Its exit code, when one was observed.
        status: Option<i32>,
    },
    /// A deadline elapsed (handshake or round I/O).
    Timeout {
        /// What the coordinator was waiting for.
        stage: &'static str,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { stage, source } => write!(f, "i/o failed at {stage}: {source}"),
            TransportError::Codec(e) => write!(f, "frame codec error: {e}"),
            TransportError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            TransportError::WorkerExited { worker, status } => match status {
                Some(code) => write!(f, "worker {worker} exited with status {code} mid-run"),
                None => write!(f, "worker {worker} exited mid-run"),
            },
            TransportError::Timeout { stage } => write!(f, "timed out waiting for {stage}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { source, .. } => Some(source),
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

// ---------------------------------------------------------------------
// Wire representations of simulator events
// ---------------------------------------------------------------------

/// The event payload alphabet on the wire — mirrors the engine's
/// (crate-private) `SimEvent`, expressed over public message types so
/// external tests can construct arbitrary frames.
#[derive(Clone, Debug)]
pub enum WirePayload {
    /// An RPC delivery from `from`.
    Rpc {
        /// Sending peer.
        from: PeerId,
        /// The RPC.
        rpc: Rpc,
    },
    /// A heartbeat tick.
    Heartbeat,
    /// A scheduled local publish.
    Publish {
        /// Target topic.
        topic: Topic,
        /// Payload bytes.
        data: Vec<u8>,
        /// Accounting class.
        class: TrafficClass,
    },
    /// A peer restart (fault plane).
    Restart,
    /// A clock-skew step (fault plane).
    ClockSkew {
        /// Signed drift delta (ms).
        delta_ms: i64,
    },
}

/// One queued simulator event on the wire: the `(at, origin, seq)` key,
/// the target peer, and the payload.
#[derive(Clone, Debug)]
pub struct WireEvent {
    /// Fire time (ms).
    pub at: SimTime,
    /// Origin peer of the event key.
    pub origin: PeerId,
    /// Origin-local sequence of the event key.
    pub seq: u64,
    /// Peer the event is dispatched to.
    pub target: PeerId,
    /// The event payload.
    pub payload: WirePayload,
}

impl WireEvent {
    pub(crate) fn from_queued(ev: QueuedEvent) -> WireEvent {
        let payload = match ev.event {
            SimEvent::Rpc { from, rpc } => WirePayload::Rpc { from, rpc },
            SimEvent::Heartbeat => WirePayload::Heartbeat,
            SimEvent::Publish { topic, data, class } => WirePayload::Publish { topic, data, class },
            SimEvent::Restart => WirePayload::Restart,
            SimEvent::ClockSkew { delta_ms } => WirePayload::ClockSkew { delta_ms },
        };
        WireEvent {
            at: ev.key.at,
            origin: ev.key.origin,
            seq: ev.key.seq,
            target: ev.target,
            payload,
        }
    }

    pub(crate) fn into_queued(self) -> QueuedEvent {
        let event = match self.payload {
            WirePayload::Rpc { from, rpc } => SimEvent::Rpc { from, rpc },
            WirePayload::Heartbeat => SimEvent::Heartbeat,
            WirePayload::Publish { topic, data, class } => SimEvent::Publish { topic, data, class },
            WirePayload::Restart => SimEvent::Restart,
            WirePayload::ClockSkew { delta_ms } => SimEvent::ClockSkew { delta_ms },
        };
        QueuedEvent {
            key: EventKey {
                at: self.at,
                origin: self.origin,
                seq: self.seq,
            },
            target: self.target,
            event,
        }
    }
}

/// The coordinator–worker protocol alphabet (see the module docs for
/// the exchange sequence).
#[derive(Clone, Debug)]
pub enum Frame {
    /// Worker → coordinator: identify.
    Hello {
        /// This worker's index.
        worker: u32,
        /// Total worker count the worker was launched with.
        workers: u32,
    },
    /// Coordinator → worker: the opaque scenario configuration bytes.
    Config(Vec<u8>),
    /// Worker → coordinator: construction finished. Carries the full
    /// shard-latency matrix (cross-checked for equality across workers)
    /// and the initial heads of the worker's owned shards.
    Ready {
        /// Row-major `shards²` shortest-path matrix.
        dist: Vec<SimTime>,
        /// Per-shard minimum round-trips (`shards` entries).
        cyc: Vec<SimTime>,
        /// Initial earliest pending time per owned shard.
        heads: Vec<SimTime>,
    },
    /// Coordinator → worker: run one barrier round.
    Round {
        /// Dispatch horizons for the worker's owned shards.
        horizons: Vec<SimTime>,
        /// Cross-worker events that arrived for this worker's shards.
        events: Vec<WireEvent>,
    },
    /// Worker → coordinator: round outcome.
    RoundResult {
        /// Events dispatched this round.
        processed: u64,
        /// Post-dispatch earliest pending time per owned shard.
        heads: Vec<SimTime>,
        /// Events bound for other workers' shards.
        events: Vec<WireEvent>,
    },
    /// Coordinator → worker: the run is over; send results.
    Finish,
    /// Worker → coordinator: wire-encoded metrics snapshot.
    Snapshot(Vec<u8>),
    /// Worker → coordinator: opaque per-worker report fragment.
    Report(Vec<u8>),
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_CONFIG: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_ROUND: u8 = 4;
const TAG_ROUND_RESULT: u8 = 5;
const TAG_FINISH: u8 = 6;
const TAG_SNAPSHOT: u8 = 7;
const TAG_REPORT: u8 = 8;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_times(out: &mut Vec<u8>, times: &[SimTime]) {
    put_u32(out, times.len() as u32);
    for &t in times {
        put_u64(out, t);
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[MessageId]) {
    put_u32(out, ids.len() as u32);
    for id in ids {
        out.extend_from_slice(&id.0);
    }
}

fn class_tag(class: TrafficClass) -> u8 {
    match class {
        TrafficClass::Honest => 0,
        TrafficClass::Spam => 1,
        TrafficClass::Invalid => 2,
    }
}

fn put_message(out: &mut Vec<u8>, m: &Message) {
    out.extend_from_slice(&m.id.0);
    put_u32(out, m.topic);
    put_u64(out, m.origin as u64);
    put_u64(out, m.seq);
    out.push(class_tag(m.class));
    put_u64(out, m.published_at);
    put_bytes(out, &m.data);
}

fn put_rpc(out: &mut Vec<u8>, rpc: &Rpc) {
    match rpc {
        Rpc::Publish(m) => {
            out.push(0);
            put_message(out, m);
        }
        Rpc::IHave(topic, ids) => {
            out.push(1);
            put_u32(out, *topic);
            put_ids(out, ids);
        }
        Rpc::IWant(ids) => {
            out.push(2);
            put_ids(out, ids);
        }
        Rpc::Graft(topic) => {
            out.push(3);
            put_u32(out, *topic);
        }
        Rpc::Prune(topic) => {
            out.push(4);
            put_u32(out, *topic);
        }
    }
}

fn put_event(out: &mut Vec<u8>, ev: &WireEvent) {
    put_u64(out, ev.at);
    put_u64(out, ev.origin as u64);
    put_u64(out, ev.seq);
    put_u64(out, ev.target as u64);
    match &ev.payload {
        WirePayload::Rpc { from, rpc } => {
            out.push(0);
            put_u64(out, *from as u64);
            put_rpc(out, rpc);
        }
        WirePayload::Heartbeat => out.push(1),
        WirePayload::Publish { topic, data, class } => {
            out.push(2);
            put_u32(out, *topic);
            out.push(class_tag(*class));
            put_bytes(out, data);
        }
        WirePayload::Restart => out.push(3),
        WirePayload::ClockSkew { delta_ms } => {
            out.push(4);
            put_u64(out, *delta_ms as u64);
        }
    }
}

fn put_events(out: &mut Vec<u8>, events: &[WireEvent]) {
    put_u32(out, events.len() as u32);
    for ev in events {
        put_event(out, ev);
    }
}

/// Sequential reader over a payload slice; every `take_*` checks the
/// remaining length first, so decoding never reads out of bounds.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Vec length guard: `count` items of at least `min_size` bytes each
    /// must fit in what's left — a corrupted count errors out instead of
    /// allocating gigabytes.
    fn len(&mut self, min_size: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_VEC || n.saturating_mul(min_size.max(1)) > self.buf.len() {
            return Err(CodecError::Oversized);
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn times(&mut self) -> Result<Vec<SimTime>, CodecError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn ids(&mut self) -> Result<Vec<MessageId>, CodecError> {
        let n = self.len(32)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(MessageId(self.take(32)?.try_into().unwrap()));
        }
        Ok(out)
    }

    fn class(&mut self) -> Result<TrafficClass, CodecError> {
        match self.u8()? {
            0 => Ok(TrafficClass::Honest),
            1 => Ok(TrafficClass::Spam),
            2 => Ok(TrafficClass::Invalid),
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn message(&mut self) -> Result<Message, CodecError> {
        let id = MessageId(self.take(32)?.try_into().unwrap());
        let topic = self.u32()?;
        let origin = self.u64()? as PeerId;
        let seq = self.u64()?;
        let class = self.class()?;
        let published_at = self.u64()?;
        let data: Arc<[u8]> = self.bytes()?.into();
        Ok(Message {
            id,
            topic,
            data,
            origin,
            seq,
            class,
            published_at,
        })
    }

    fn rpc(&mut self) -> Result<Rpc, CodecError> {
        match self.u8()? {
            0 => Ok(Rpc::Publish(Arc::new(self.message()?))),
            1 => {
                let topic = self.u32()?;
                Ok(Rpc::IHave(topic, self.ids()?.into()))
            }
            2 => Ok(Rpc::IWant(self.ids()?)),
            3 => Ok(Rpc::Graft(self.u32()?)),
            4 => Ok(Rpc::Prune(self.u32()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn event(&mut self) -> Result<WireEvent, CodecError> {
        let at = self.u64()?;
        let origin = self.u64()? as PeerId;
        let seq = self.u64()?;
        let target = self.u64()? as PeerId;
        let payload = match self.u8()? {
            0 => WirePayload::Rpc {
                from: self.u64()? as PeerId,
                rpc: self.rpc()?,
            },
            1 => WirePayload::Heartbeat,
            2 => WirePayload::Publish {
                topic: self.u32()?,
                class: self.class()?,
                data: self.bytes()?,
            },
            3 => WirePayload::Restart,
            4 => WirePayload::ClockSkew {
                delta_ms: self.u64()? as i64,
            },
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(WireEvent {
            at,
            origin,
            seq,
            target,
            payload,
        })
    }

    fn events(&mut self) -> Result<Vec<WireEvent>, CodecError> {
        // Smallest event: key + target (32 bytes) + payload tag.
        let n = self.len(33)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.event()?);
        }
        Ok(out)
    }
}

impl Frame {
    /// Encodes the frame, length prefix included — the exact bytes
    /// [`write_frame`] puts on the socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; 4];
        match self {
            Frame::Hello { worker, workers } => {
                out.push(TAG_HELLO);
                put_u32(&mut out, *worker);
                put_u32(&mut out, *workers);
            }
            Frame::Config(bytes) => {
                out.push(TAG_CONFIG);
                put_bytes(&mut out, bytes);
            }
            Frame::Ready { dist, cyc, heads } => {
                out.push(TAG_READY);
                put_times(&mut out, dist);
                put_times(&mut out, cyc);
                put_times(&mut out, heads);
            }
            Frame::Round { horizons, events } => {
                out.push(TAG_ROUND);
                put_times(&mut out, horizons);
                put_events(&mut out, events);
            }
            Frame::RoundResult {
                processed,
                heads,
                events,
            } => {
                out.push(TAG_ROUND_RESULT);
                put_u64(&mut out, *processed);
                put_times(&mut out, heads);
                put_events(&mut out, events);
            }
            Frame::Finish => out.push(TAG_FINISH),
            Frame::Snapshot(bytes) => {
                out.push(TAG_SNAPSHOT);
                put_bytes(&mut out, bytes);
            }
            Frame::Report(bytes) => {
                out.push(TAG_REPORT);
                put_bytes(&mut out, bytes);
            }
        }
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes());
        out
    }

    /// Decodes the payload of one frame (the bytes *after* the length
    /// prefix). Total: every input returns a frame or a [`CodecError`].
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, CodecError> {
        let mut r = Reader { buf: payload };
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                worker: r.u32()?,
                workers: r.u32()?,
            },
            TAG_CONFIG => Frame::Config(r.bytes()?),
            TAG_READY => Frame::Ready {
                dist: r.times()?,
                cyc: r.times()?,
                heads: r.times()?,
            },
            TAG_ROUND => Frame::Round {
                horizons: r.times()?,
                events: r.events()?,
            },
            TAG_ROUND_RESULT => Frame::RoundResult {
                processed: r.u64()?,
                heads: r.times()?,
                events: r.events()?,
            },
            TAG_FINISH => Frame::Finish,
            TAG_SNAPSHOT => Frame::Snapshot(r.bytes()?),
            TAG_REPORT => Frame::Report(r.bytes()?),
            t => return Err(CodecError::BadTag(t)),
        };
        if !r.buf.is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(frame)
    }

    /// One-shot decode of a complete frame (length prefix included).
    /// Returns the frame and the bytes consumed. An incomplete buffer is
    /// [`CodecError::Truncated`]; a length header above
    /// [`MAX_FRAME_LEN`] is [`CodecError::Oversized`].
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), CodecError> {
        if buf.len() < 4 {
            return Err(CodecError::Truncated);
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversized);
        }
        if buf.len() - 4 < len {
            return Err(CodecError::Truncated);
        }
        let frame = Frame::decode_payload(&buf[4..4 + len])?;
        Ok((frame, 4 + len))
    }
}

/// Incremental frame decoder for a byte stream arriving in arbitrary
/// chunks (partial writes, TCP segmentation): [`FrameDecoder::feed`]
/// appends bytes, [`FrameDecoder::next_frame`] yields complete frames.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: drop consumed bytes before growing the buffer.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, `Ok(None)` when more bytes are needed.
    /// Unlike [`Frame::decode`], an incomplete buffer is *not* an error
    /// here — only corruption inside a complete frame is.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, CodecError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversized);
        }
        if avail.len() - 4 < len {
            return Ok(None);
        }
        let frame = Frame::decode_payload(&avail[4..4 + len])?;
        self.pos += 4 + len;
        Ok(frame.into())
    }
}

/// Writes one frame to the stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// Reads one complete frame from the stream (blocking, honoring any
/// read timeout set on it).
pub fn read_frame(r: &mut impl Read, stage: &'static str) -> Result<Frame, TransportError> {
    let io = |source| TransportError::Io { stage, source };
    let mut header = [0u8; 4];
    r.read_exact(&mut header).map_err(io)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::Oversized.into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(io)?;
    Ok(Frame::decode_payload(&payload)?)
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// The contiguous peer range owned by `worker` — the worker's shard
/// range times the peers-per-shard chunk, re-derived through the exact
/// scheduler layout (`ShardedScheduler` and the
/// worker scheduler share it), so driver layers can partition per-peer
/// work without duplicating the formula.
pub fn worker_peer_range(
    peers: usize,
    shards: usize,
    workers: usize,
    worker: usize,
) -> std::ops::Range<usize> {
    let (chunk, shards) = crate::scheduler::shard_layout(peers, shards);
    let range = worker_shard_range(shards, workers, worker);
    (range.start * chunk).min(peers)..(range.end * chunk).min(peers)
}

/// Coordinator-side deadlines.
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorOptions {
    /// How long workers get to connect, identify, construct their
    /// networks, and send `Ready`.
    pub handshake_timeout: Duration,
    /// Per-read timeout inside the round loop and result collection.
    pub io_timeout: Duration,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            handshake_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(120),
        }
    }
}

/// Drive parameters for one distributed run — everything the
/// coordinator needs that is not learned from `Ready` frames.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Total peer count (fixes the peer→shard mapping).
    pub peers: usize,
    /// Total shard count (the in-process layout's `shard_layout` count).
    pub shards: usize,
    /// Round-bounding strategy (must match the workers' config).
    pub lookahead: Lookahead,
    /// `max(1, latency_min_ms)` — quantum / matrix floor.
    pub quantum: SimTime,
    /// Run the event loop until (at least) this network time.
    pub until: SimTime,
}

/// A finished distributed run, in fixed worker order.
#[derive(Debug)]
pub struct RunOutcome {
    /// Barrier rounds executed (the distributed `barriers()` figure).
    pub rounds: u64,
    /// Total events dispatched across all workers.
    pub events_processed: u64,
    /// Per-worker wire-encoded metric snapshots.
    pub snapshots: Vec<Vec<u8>>,
    /// Per-worker opaque report fragments.
    pub reports: Vec<Vec<u8>>,
}

/// The multi-process scheduler's coordinator half: accepts N worker
/// connections, replays the in-process round loop over the sockets
/// (heads → horizons → round → outbox routing), and collects the final
/// snapshot/report frames. Owns the spawned worker processes: any
/// failure kills them all before returning, so a failed run leaves no
/// orphans and emits no partial results.
pub struct DistributedScheduler {
    listener: TcpListener,
    options: CoordinatorOptions,
    workers: usize,
    children: Vec<Child>,
}

impl DistributedScheduler {
    /// Binds a loopback listener for `workers` workers.
    pub fn bind(workers: usize, options: CoordinatorOptions) -> Result<Self, TransportError> {
        assert!(workers >= 1, "need at least one worker");
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).map_err(|source| TransportError::Io {
                stage: "bind coordinator listener",
                source,
            })?;
        Ok(DistributedScheduler {
            listener,
            options,
            workers,
            children: Vec::new(),
        })
    }

    /// The listener's port — export it to workers before spawning them.
    pub fn port(&self) -> u16 {
        self.listener
            .local_addr()
            .map(|a| a.port())
            .expect("listener has a local addr")
    }

    /// Registers a spawned worker process for supervision. Children are
    /// killed on any run error and reaped on success.
    pub fn attach_child(&mut self, child: Child) {
        self.children.push(child);
    }

    /// Runs the full protocol: handshake, round loop, result
    /// collection. See the module docs for the equivalence argument.
    pub fn run(
        &mut self,
        params: RunParams,
        config_bytes: &[u8],
    ) -> Result<RunOutcome, TransportError> {
        let result = self.run_inner(params, config_bytes);
        if result.is_err() {
            self.kill_children();
        }
        result
    }

    fn run_inner(
        &mut self,
        params: RunParams,
        config_bytes: &[u8],
    ) -> Result<RunOutcome, TransportError> {
        let workers = self.workers;
        // Re-derive the layout exactly as `WorkerScheduler::new` does so
        // the peer→shard→worker mapping matches byte for byte.
        let (chunk, shards) = crate::scheduler::shard_layout(params.peers, params.shards);
        let ranges: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| worker_shard_range(shards, workers, w))
            .collect();
        let mut owner_of = vec![0usize; shards];
        for (w, range) in ranges.iter().enumerate() {
            for shard in range.clone() {
                owner_of[shard] = w;
            }
        }

        let mut streams = self.handshake(config_bytes)?;

        // Collect Ready frames: cross-check the latency matrix, merge
        // initial heads.
        let mut dist: Option<Vec<SimTime>> = None;
        let mut cyc: Option<Vec<SimTime>> = None;
        let mut heads = vec![FAR; shards];
        for (w, stream) in streams.iter_mut().enumerate() {
            stream
                .set_read_timeout(Some(self.options.handshake_timeout))
                .map_err(|source| TransportError::Io {
                    stage: "set handshake timeout",
                    source,
                })?;
            let frame = self.read_worker_frame(stream, w, "read Ready")?;
            let Frame::Ready {
                dist: d,
                cyc: c,
                heads: h,
            } = frame
            else {
                return Err(TransportError::Protocol(format!(
                    "worker {w}: expected Ready"
                )));
            };
            if d.len() != shards * shards || c.len() != shards || h.len() != ranges[w].len() {
                return Err(TransportError::Protocol(format!(
                    "worker {w}: Ready dimensions mismatch"
                )));
            }
            match (&dist, &cyc) {
                (None, _) => {
                    dist = Some(d);
                    cyc = Some(c);
                }
                (Some(d0), Some(c0)) => {
                    if *d0 != d || *c0 != c {
                        return Err(TransportError::Protocol(format!(
                            "worker {w}: shard latency matrix differs from worker 0 \
                             (non-deterministic construction?)"
                        )));
                    }
                }
                _ => unreachable!("dist and cyc are set together"),
            }
            heads[ranges[w].clone()].copy_from_slice(&h);
        }
        let dist = dist.expect("at least one worker");
        let cyc = cyc.expect("at least one worker");

        for stream in &streams {
            stream
                .set_read_timeout(Some(self.options.io_timeout))
                .map_err(|source| TransportError::Io {
                    stage: "set round timeout",
                    source,
                })?;
        }

        // The round loop — the socket-borne twin of
        // `ShardedScheduler::run_until`. `heads` here is the *effective*
        // head per shard: the worker-reported queue head folded with the
        // earliest cross-worker event still parked in `pending`.
        let mut pending: Vec<Vec<WireEvent>> = (0..workers).map(|_| Vec::new()).collect();
        let mut horizons = vec![0u64; shards];
        let mut rounds = 0u64;
        let mut events_processed = 0u64;
        while let Some(&start) = heads.iter().min() {
            if start > params.until {
                break;
            }
            fill_horizons(
                params.lookahead,
                params.quantum,
                &dist,
                &cyc,
                &heads,
                start,
                params.until,
                &mut horizons,
            );
            // Write every Round frame before reading any result: workers
            // run their shards concurrently, and neither side blocks on
            // the other mid-round (workers read one frame, then write
            // one frame).
            for (w, stream) in streams.iter_mut().enumerate() {
                let frame = Frame::Round {
                    horizons: horizons[ranges[w].clone()].to_vec(),
                    events: std::mem::take(&mut pending[w]),
                };
                write_frame(stream, &frame).map_err(|source| TransportError::Io {
                    stage: "write Round",
                    source,
                })?;
            }
            rounds += 1;
            // Collect every result before routing: a later worker's
            // reported heads must not clobber an earlier worker's
            // cross-shard fold.
            let mut crossing: Vec<WireEvent> = Vec::new();
            for w in 0..workers {
                let frame = {
                    let stream = &mut streams[w];
                    self.read_worker_frame(stream, w, "read RoundResult")?
                };
                let Frame::RoundResult {
                    processed,
                    heads: h,
                    events,
                } = frame
                else {
                    return Err(TransportError::Protocol(format!(
                        "worker {w}: expected RoundResult"
                    )));
                };
                if h.len() != ranges[w].len() {
                    return Err(TransportError::Protocol(format!(
                        "worker {w}: RoundResult head count mismatch"
                    )));
                }
                events_processed += processed;
                heads[ranges[w].clone()].copy_from_slice(&h);
                crossing.extend(events);
            }
            // Route cross-worker events (worker order == fixed shard
            // order, since shard ranges are contiguous) and fold each
            // fire time into its target shard's effective head — the
            // in-process run would have pushed the event into that
            // shard's queue at this same barrier.
            for ev in crossing {
                let shard = (ev.target / chunk).min(shards - 1);
                if ev.at < heads[shard] {
                    heads[shard] = ev.at;
                }
                pending[owner_of[shard]].push(ev);
            }
        }

        // Finish: collect snapshots and reports in fixed worker order.
        let mut snapshots = Vec::with_capacity(workers);
        let mut reports = Vec::with_capacity(workers);
        for (w, stream) in streams.iter_mut().enumerate() {
            write_frame(stream, &Frame::Finish).map_err(|source| TransportError::Io {
                stage: "write Finish",
                source,
            })?;
            let frame = self.read_worker_frame(stream, w, "read Snapshot")?;
            let Frame::Snapshot(bytes) = frame else {
                return Err(TransportError::Protocol(format!(
                    "worker {w}: expected Snapshot"
                )));
            };
            snapshots.push(bytes);
            let frame = self.read_worker_frame(stream, w, "read Report")?;
            let Frame::Report(bytes) = frame else {
                return Err(TransportError::Protocol(format!(
                    "worker {w}: expected Report"
                )));
            };
            reports.push(bytes);
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        self.children.clear();
        Ok(RunOutcome {
            rounds,
            events_processed,
            snapshots,
            reports,
        })
    }

    /// Accept + Hello/Config exchange for every worker, with a shared
    /// deadline. Polls non-blockingly so a worker that died before
    /// connecting is reported as [`TransportError::WorkerExited`] rather
    /// than a timeout.
    fn handshake(&mut self, config_bytes: &[u8]) -> Result<Vec<TcpStream>, TransportError> {
        let deadline = Instant::now() + self.options.handshake_timeout;
        self.listener
            .set_nonblocking(true)
            .map_err(|source| TransportError::Io {
                stage: "set listener nonblocking",
                source,
            })?;
        let mut slots: Vec<Option<TcpStream>> = (0..self.workers).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < self.workers {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .and_then(|_| stream.set_nodelay(true))
                        .and_then(|_| {
                            let remaining = deadline
                                .saturating_duration_since(Instant::now())
                                .max(Duration::from_millis(1));
                            stream.set_read_timeout(Some(remaining))
                        })
                        .map_err(|source| TransportError::Io {
                            stage: "configure worker socket",
                            source,
                        })?;
                    let frame = read_frame(&mut stream, "read Hello")?;
                    let Frame::Hello { worker, workers } = frame else {
                        return Err(TransportError::Protocol("expected Hello".into()));
                    };
                    let worker = worker as usize;
                    if workers as usize != self.workers || worker >= self.workers {
                        return Err(TransportError::Protocol(format!(
                            "Hello claims worker {worker} of {workers}, expected {} workers",
                            self.workers
                        )));
                    }
                    if slots[worker].is_some() {
                        return Err(TransportError::Protocol(format!(
                            "worker {worker} connected twice"
                        )));
                    }
                    write_frame(&mut stream, &Frame::Config(config_bytes.to_vec())).map_err(
                        |source| TransportError::Io {
                            stage: "write Config",
                            source,
                        },
                    )?;
                    slots[worker] = Some(stream);
                    connected += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout {
                            stage: "worker handshake",
                        });
                    }
                    self.check_children()?;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(source) => {
                    return Err(TransportError::Io {
                        stage: "accept worker",
                        source,
                    })
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all connected"))
            .collect())
    }

    /// Reads a frame from worker `w`, attributing read failures to a
    /// dead worker process when one is observed.
    fn read_worker_frame(
        &mut self,
        stream: &mut TcpStream,
        worker: usize,
        stage: &'static str,
    ) -> Result<Frame, TransportError> {
        match read_frame(stream, stage) {
            Ok(frame) => Ok(frame),
            Err(err) => {
                if let Some(child) = self.children.get_mut(worker) {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(TransportError::WorkerExited {
                            worker,
                            status: status.code(),
                        });
                    }
                }
                if let TransportError::Io { source, .. } = &err {
                    if matches!(
                        source.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        return Err(TransportError::Timeout { stage });
                    }
                }
                Err(err)
            }
        }
    }

    /// Any attached child already exited → [`TransportError::WorkerExited`].
    fn check_children(&mut self) -> Result<(), TransportError> {
        for (worker, child) in self.children.iter_mut().enumerate() {
            if let Ok(Some(status)) = child.try_wait() {
                return Err(TransportError::WorkerExited {
                    worker,
                    status: status.code(),
                });
            }
        }
        Ok(())
    }

    fn kill_children(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for DistributedScheduler {
    fn drop(&mut self) {
        self.kill_children();
    }
}

// ---------------------------------------------------------------------
// Worker session
// ---------------------------------------------------------------------

/// Worker-side knobs (fault-injection hooks for the negative-path
/// tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerOptions {
    /// Exit the process (status 3) after completing this many rounds
    /// *without* replying — simulates a worker crashing mid-quantum.
    pub exit_after_rounds: Option<u64>,
}

/// The worker half of the protocol: connects, identifies, receives the
/// opaque config, then executes coordinator-driven rounds against a
/// [`Network`] built with [`Network::new_worker`].
pub struct WorkerSession {
    stream: TcpStream,
    options: WorkerOptions,
}

impl WorkerSession {
    /// Connects to the coordinator, sends `Hello`, and returns the
    /// session plus the scenario config bytes from the `Config` frame.
    pub fn connect(
        addr: &str,
        worker: usize,
        workers: usize,
        options: WorkerOptions,
    ) -> Result<(Self, Vec<u8>), TransportError> {
        let mut stream = TcpStream::connect(addr).map_err(|source| TransportError::Io {
            stage: "connect to coordinator",
            source,
        })?;
        stream
            .set_nodelay(true)
            .map_err(|source| TransportError::Io {
                stage: "configure coordinator socket",
                source,
            })?;
        write_frame(
            &mut stream,
            &Frame::Hello {
                worker: worker as u32,
                workers: workers as u32,
            },
        )
        .map_err(|source| TransportError::Io {
            stage: "write Hello",
            source,
        })?;
        let frame = read_frame(&mut stream, "read Config")?;
        let Frame::Config(bytes) = frame else {
            return Err(TransportError::Protocol("expected Config".into()));
        };
        Ok((WorkerSession { stream, options }, bytes))
    }

    /// Announces readiness and executes rounds until the coordinator
    /// sends `Finish`. `net` must have been built with
    /// [`Network::new_worker`] and have its workload fully scheduled.
    pub fn run(&mut self, net: &mut Network, until: SimTime) -> Result<(), TransportError> {
        let worker = net
            .scheduler
            .as_worker()
            .expect("WorkerSession::run requires a Network built by new_worker");
        let (dist, cyc, heads) = (
            worker.dist().to_vec(),
            worker.cyc().to_vec(),
            worker.heads(),
        );
        write_frame(&mut self.stream, &Frame::Ready { dist, cyc, heads }).map_err(|source| {
            TransportError::Io {
                stage: "write Ready",
                source,
            }
        })?;
        let mut rounds_done = 0u64;
        loop {
            let frame = read_frame(&mut self.stream, "read Round")?;
            match frame {
                Frame::Round { horizons, events } => {
                    let worker = net.scheduler.as_worker().expect("worker scheduler");
                    for ev in events {
                        worker.inject(ev.into_queued());
                    }
                    let (processed, outbox) = {
                        let config = &net.config;
                        // Split borrow: scheduler and slots are distinct
                        // fields, but `as_worker` ties them through
                        // `net`; re-borrow via the struct fields.
                        let Network {
                            scheduler, slots, ..
                        } = net;
                        let worker = scheduler.as_worker().expect("worker scheduler");
                        worker.round(slots, config, &horizons)
                    };
                    net.events_processed += processed;
                    rounds_done += 1;
                    if self
                        .options
                        .exit_after_rounds
                        .is_some_and(|n| rounds_done >= n)
                    {
                        // Crash mid-quantum: work done, reply never sent.
                        std::process::exit(3);
                    }
                    let worker = net.scheduler.as_worker().expect("worker scheduler");
                    let heads = worker.heads();
                    let events = outbox.into_iter().map(WireEvent::from_queued).collect();
                    write_frame(
                        &mut self.stream,
                        &Frame::RoundResult {
                            processed,
                            heads,
                            events,
                        },
                    )
                    .map_err(|source| TransportError::Io {
                        stage: "write RoundResult",
                        source,
                    })?;
                }
                Frame::Finish => {
                    net.now = net.now.max(until);
                    return Ok(());
                }
                other => {
                    return Err(TransportError::Protocol(format!(
                        "expected Round or Finish, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Sends the final `Snapshot` and `Report` frames.
    pub fn send_results(&mut self, snapshot: &[u8], report: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &Frame::Snapshot(snapshot.to_vec())).map_err(|source| {
            TransportError::Io {
                stage: "write Snapshot",
                source,
            }
        })?;
        write_frame(&mut self.stream, &Frame::Report(report.to_vec())).map_err(|source| {
            TransportError::Io {
                stage: "write Report",
                source,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) -> Frame {
        let bytes = frame.encode();
        let (decoded, consumed) = Frame::decode(&bytes).expect("round trip");
        assert_eq!(consumed, bytes.len());
        // Re-encoding must be byte-stable (the proptest suite leans on
        // this as its equality oracle).
        assert_eq!(decoded.encode(), bytes);
        decoded
    }

    #[test]
    fn frames_round_trip() {
        let msg = Message::new(7, vec![1, 2, 3], 4, 5, TrafficClass::Spam);
        let frames = vec![
            Frame::Hello {
                worker: 3,
                workers: 8,
            },
            Frame::Config(vec![9, 9, 9]),
            Frame::Ready {
                dist: vec![0, 20, 20, 0],
                cyc: vec![40, 40],
                heads: vec![123],
            },
            Frame::Round {
                horizons: vec![5_000, 5_001],
                events: vec![
                    WireEvent {
                        at: 10,
                        origin: 1,
                        seq: 2,
                        target: 3,
                        payload: WirePayload::Rpc {
                            from: 1,
                            rpc: Rpc::Publish(Arc::new(msg.clone())),
                        },
                    },
                    WireEvent {
                        at: 11,
                        origin: 2,
                        seq: 0,
                        target: 2,
                        payload: WirePayload::ClockSkew { delta_ms: -500 },
                    },
                ],
            },
            Frame::RoundResult {
                processed: 42,
                heads: vec![6_000],
                events: vec![WireEvent {
                    at: 12,
                    origin: 0,
                    seq: 9,
                    target: 5,
                    payload: WirePayload::Rpc {
                        from: 0,
                        rpc: Rpc::IHave(7, vec![msg.id, msg.id].into()),
                    },
                }],
            },
            Frame::Finish,
            Frame::Snapshot(vec![1, 2]),
            Frame::Report(vec![]),
        ];
        for frame in &frames {
            round_trip(frame);
        }
    }

    #[test]
    fn truncations_and_corruption_are_structured_errors() {
        let frame = Frame::Ready {
            dist: vec![1, 2, 3, 4],
            cyc: vec![5, 6],
            heads: vec![7],
        };
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            assert!(
                matches!(Frame::decode(&bytes[..cut]), Err(CodecError::Truncated)),
                "cut at {cut}"
            );
        }
        let mut oversized = bytes.clone();
        oversized[..4].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(CodecError::Oversized)
        ));
        let mut bad_tag = bytes.clone();
        bad_tag[4] = 200;
        assert!(matches!(
            Frame::decode(&bad_tag),
            Err(CodecError::BadTag(200))
        ));
    }

    #[test]
    fn streaming_decoder_handles_partial_feeds() {
        let a = Frame::Finish.encode();
        let b = Frame::Config(vec![1, 2, 3, 4, 5]).encode();
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let mut dec = FrameDecoder::new();
        let mut seen = 0;
        for chunk in all.chunks(3) {
            dec.feed(chunk);
            while let Some(frame) = dec.next_frame().expect("no corruption") {
                seen += 1;
                match seen {
                    1 => assert_eq!(frame.encode(), a),
                    2 => assert_eq!(frame.encode(), b),
                    _ => panic!("too many frames"),
                }
            }
        }
        assert_eq!(seen, 2);
        assert!(dec.next_frame().expect("clean tail").is_none());
    }
}
