//! Event schedulers: the serial reference implementation and the
//! event-sharded, pool-parallel engine.
//!
//! ## Why the two agree bit-for-bit
//!
//! Peers never share mutable state (see [`crate::engine`]), so a run is
//! fully determined by the per-peer sequence of dispatched events, and
//! event keys `(at, origin, seq)` are unique and totally ordered. The
//! serial scheduler pops one global heap in key order; the sharded
//! scheduler pops per-shard heaps in key order. Both therefore dispatch
//! each peer's events in ascending key order — the only order that can
//! influence state — so the final network state is identical.
//!
//! ## The quantum invariant
//!
//! The sharded engine advances simulated time in quanta of
//! `Δ = max(1, latency_min_ms)`. Every *cross-peer* event is an RPC whose
//! link latency is sampled ≥ `max(1, latency_min_ms)` = Δ, so an event
//! dispatched at `t ∈ [T, T+Δ)` can only schedule cross-peer work at
//! `≥ t + Δ ≥ T + Δ` — strictly after the current round. Cross-shard
//! events buffered in per-shard outboxes and drained at the quantum
//! barrier thus always arrive before any shard could need them; only
//! self-events (heartbeat re-arms, local publishes) can fire inside the
//! round, and those stay on the owning shard's heap. Outboxes are drained
//! in fixed shard order, and heap pop order over unique keys is
//! insertion-order independent, so the drain order cannot leak into
//! results either.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::{PeerSlot, QueuedEvent};
use crate::message::SimTime;
use crate::network::NetworkConfig;

/// Which engine executes the event queue. Results are bit-identical across
/// every variant (and every `WAKU_POOL_THREADS` value); the choice only
/// affects wall-clock speed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Pick automatically: serial for small networks, sharded for large
    /// ones. `WAKU_SIM_SHARDS` (≥ 1; 1 = serial) overrides the heuristic.
    Auto,
    /// Single global event heap on the calling thread.
    Serial,
    /// Event-sharded quantum-stepped engine on `waku-pool`.
    Sharded {
        /// Number of peer shards (clamped to `1..=peers`).
        shards: usize,
    },
}

impl SchedulerKind {
    /// Resolves to the concrete shard count a network of `peers` would run
    /// with (1 ⇒ the serial scheduler).
    pub fn resolve(self, peers: usize) -> usize {
        let clamp = |s: usize| s.clamp(1, peers.max(1));
        match self {
            SchedulerKind::Serial => 1,
            SchedulerKind::Sharded { shards } => clamp(shards),
            SchedulerKind::Auto => {
                if let Some(s) = std::env::var("WAKU_SIM_SHARDS")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                {
                    return clamp(s.max(1));
                }
                if peers < 512 {
                    1
                } else {
                    // ~512 peers per shard, capped so tiny pools aren't
                    // drowned in barrier overhead.
                    clamp((peers / 512).clamp(2, 64))
                }
            }
        }
    }
}

/// Executes queued events against the peer slots up to a target time.
pub(crate) trait Scheduler: Send {
    /// Adds an externally injected event (initial heartbeats, `publish_at`).
    fn enqueue(&mut self, ev: QueuedEvent);
    /// Dispatches every event with `at ≤ t`; returns how many ran.
    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64;
    /// Shard count (1 for the serial engine) — for diagnostics.
    fn shards(&self) -> usize;
}

/// Reference implementation: one global min-heap, popped in key order.
pub(crate) struct SerialScheduler {
    queue: BinaryHeap<Reverse<QueuedEvent>>,
}

impl SerialScheduler {
    pub(crate) fn new() -> Self {
        SerialScheduler {
            queue: BinaryHeap::new(),
        }
    }
}

impl Scheduler for SerialScheduler {
    fn enqueue(&mut self, ev: QueuedEvent) {
        self.queue.push(Reverse(ev));
    }

    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64 {
        let mut processed = 0u64;
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.key.at > t {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            processed += 1;
            slots[ev.target].dispatch(ev.target, ev.key.at, ev.event, config, &mut out);
            for e in out.drain(..) {
                self.queue.push(Reverse(e));
            }
        }
        processed
    }

    fn shards(&self) -> usize {
        1
    }
}

/// One shard's work for one quantum round: drain the shard-local heap up
/// to the round boundary, keeping self/intra-shard events local and
/// buffering cross-shard events in the outbox.
struct ShardRound<'a> {
    queue: &'a mut BinaryHeap<Reverse<QueuedEvent>>,
    slots: &'a mut [PeerSlot],
    /// First peer id owned by this shard.
    base: usize,
    outbox: Vec<QueuedEvent>,
    processed: u64,
}

impl ShardRound<'_> {
    fn run(&mut self, config: &NetworkConfig, round_end: SimTime, t: SimTime) {
        let mut out = Vec::new();
        while let Some(at) = self.queue.peek().map(|Reverse(e)| e.key.at) {
            if at >= round_end || at > t {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.processed += 1;
            self.slots[ev.target - self.base]
                .dispatch(ev.target, ev.key.at, ev.event, config, &mut out);
            for e in out.drain(..) {
                if e.target >= self.base && e.target < self.base + self.slots.len() {
                    self.queue.push(Reverse(e));
                } else {
                    self.outbox.push(e);
                }
            }
        }
    }
}

/// Event-sharded engine: peers are partitioned into contiguous shards,
/// each with its own event heap; every time quantum runs as one fork-join
/// round on `waku-pool` (see module docs for the correctness argument).
pub(crate) struct ShardedScheduler {
    queues: Vec<BinaryHeap<Reverse<QueuedEvent>>>,
    /// Peers per shard (the last shard may be smaller).
    chunk: usize,
}

impl ShardedScheduler {
    pub(crate) fn new(peers: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, peers.max(1));
        let chunk = peers.div_ceil(shards).max(1);
        let num_queues = peers.div_ceil(chunk).max(1);
        ShardedScheduler {
            queues: (0..num_queues).map(|_| BinaryHeap::new()).collect(),
            chunk,
        }
    }
}

impl Scheduler for ShardedScheduler {
    fn enqueue(&mut self, ev: QueuedEvent) {
        self.queues[ev.target / self.chunk].push(Reverse(ev));
    }

    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64 {
        let quantum = config.latency_min_ms.max(1);
        let chunk = self.chunk;
        let mut processed = 0u64;
        // Each iteration is one quantum round, starting at the earliest
        // pending event (idle gaps — e.g. between heartbeat waves — are
        // skipped, not stepped).
        while let Some(start) = self
            .queues
            .iter()
            .filter_map(|q| q.peek().map(|Reverse(e)| e.key.at))
            .min()
        {
            if start > t {
                break;
            }
            let round_end = start.saturating_add(quantum);
            let mut rounds: Vec<ShardRound> = self
                .queues
                .iter_mut()
                .zip(slots.chunks_mut(chunk))
                .enumerate()
                .map(|(i, (queue, slots))| ShardRound {
                    queue,
                    slots,
                    base: i * chunk,
                    outbox: Vec::new(),
                    processed: 0,
                })
                .collect();
            waku_pool::par_for_each_mut(&mut rounds, |_, round| round.run(config, round_end, t));
            let results: Vec<(u64, Vec<QueuedEvent>)> = rounds
                .into_iter()
                .map(|r| (r.processed, r.outbox))
                .collect();
            // Quantum barrier: drain outboxes in fixed shard order.
            for (count, outbox) in results {
                processed += count;
                for ev in outbox {
                    self.queues[ev.target / chunk].push(Reverse(ev));
                }
            }
        }
        processed
    }

    fn shards(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_resolution() {
        assert_eq!(SchedulerKind::Serial.resolve(10_000), 1);
        assert_eq!(SchedulerKind::Sharded { shards: 8 }.resolve(100), 8);
        // Sharded never exceeds the peer count.
        assert_eq!(SchedulerKind::Sharded { shards: 64 }.resolve(10), 10);
        assert_eq!(SchedulerKind::Auto.resolve(100), 1);
        assert!(SchedulerKind::Auto.resolve(10_000) >= 2);
    }

    #[test]
    fn sharded_partition_covers_all_peers() {
        for (peers, shards) in [(10, 3), (100, 7), (1, 4), (512, 2)] {
            let s = ShardedScheduler::new(peers, shards);
            // Every peer maps to a valid queue.
            for p in 0..peers {
                assert!(
                    p / s.chunk < s.queues.len(),
                    "peers={peers} shards={shards}"
                );
            }
        }
    }
}
