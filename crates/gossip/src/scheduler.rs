//! Event schedulers: the serial reference implementation and the
//! event-sharded, pool-parallel engine with adaptive per-shard lookahead.
//!
//! ## Why the two agree bit-for-bit
//!
//! Peers never share mutable state (see [`crate::engine`]), so a run is
//! fully determined by the per-peer sequence of dispatched events, and
//! event keys `(at, origin, seq)` are unique and totally ordered. The
//! serial scheduler pops one global heap in key order; the sharded
//! scheduler pops per-shard heaps in key order. Both therefore dispatch
//! each peer's events in ascending key order — the only order that can
//! influence state — so the final network state is identical.
//!
//! ## The lookahead invariant (Chandy–Misra null-message bound)
//!
//! Every *cross-peer* event is an RPC along a topology edge whose link
//! latency is sampled ≥ `w = max(1, latency_min_ms)`. Lift the peer
//! topology to the shard level: `w(j,i) = w` when any peer in shard `j`
//! neighbors a peer in shard `i`, else ∞, and let `dist(j,i)` be the
//! all-pairs shortest path over that graph (Floyd–Warshall, computed once
//! at construction). If `T_j` is shard `j`'s earliest pending event time
//! at a barrier, then no event shard `j` will *ever* process (now or in
//! any future round) fires before `T_j`, so nothing can arrive at shard
//! `i` before
//!
//! ```text
//! horizon_i = min( min_{j≠i} T_j + dist(j,i),   // other shards' events
//!                  T_i + cyc(i) )               // echoes of i's own events
//! ```
//!
//! where `cyc(i) = min_{j≠i} dist(i,j) + w(j,i)` is the shortest
//! round-trip through another shard. Shard `i` may therefore dispatch
//! every queued event strictly below `horizon_i` in one round without a
//! barrier — quiet neighborhoods let busy shards advance many quanta at
//! once, and distant shards contribute multi-hop slack. The fixed-quantum
//! engine is the degenerate bound `horizon_i = min_j T_j + w` (every
//! `dist ≥ w`, `cyc ≥ 2w`), so the adaptive engine never barriers more
//! often than the fixed one. Cross-shard events buffered in per-shard
//! outboxes are drained at the barrier in fixed shard order; heap pop
//! order over unique keys is insertion-order independent, so the drain
//! order cannot leak into results.
//!
//! Progress is guaranteed: the shard holding the globally earliest event
//! always has `horizon > T_min` (all weights ≥ 1), so every round
//! dispatches at least one event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::{EventKey, PeerSlot, QueuedEvent, SimEvent};
use crate::message::SimTime;
use crate::network::NetworkConfig;

/// Heap node of an [`EventQueue`]: the 32-byte ordering prefix of a
/// [`QueuedEvent`] plus a slab index for the (much larger) payload.
/// Binary-heap sifts move only these nodes; the `SimEvent` payload is
/// written once on push and read once on pop. Keys are globally unique,
/// so `idx` (derived order) never actually breaks a tie.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct HeapNode {
    key: EventKey,
    target: u32,
    idx: u32,
}

/// One wheel-bucket entry: everything but the fire time (implicit — all
/// entries of a bucket share it) and the payload (in the slab).
#[derive(Copy, Clone)]
struct WheelEntry {
    origin: u32,
    target: u32,
    seq: u64,
    idx: u32,
}

/// Wheel span in 1 ms buckets (power of two). Covers the default
/// heartbeat re-arm (+1000 ms) and every link latency; anything farther
/// out (pre-scheduled publishes, exotic configs) overflows into a
/// conventional heap and is promoted as the window advances — the wheel
/// size is a performance knob, never a correctness bound.
const WHEEL: usize = 2048;

/// A priority queue of simulator events: a millisecond-granular time
/// wheel with a compact-node overflow heap and a free-listed payload
/// slab.
///
/// Pop order is identical to a min-heap of whole `QueuedEvent`s — events
/// ascend by `at` (wheel buckets are visited in time order), and a
/// bucket's entries are sorted by `(origin, seq)` before draining, which
/// completes the unique `(at, origin, seq)` key order. The wheel kills
/// the `O(log n)` sift traffic that dominates 10⁴-peer runs: a push is a
/// `Vec::push` into the bucket, a pop is a `Vec::pop` off the sorted
/// active bucket, and bucket buffers are recycled in place, so the
/// steady-state hot path neither compares nor allocates.
///
/// Invariant: every wheel entry's time lies in `[cursor, cursor + WHEEL)`
/// — bucket index `at % WHEEL` is unambiguous. `cursor` only advances to
/// the next actual event time; overflow events are promoted whenever they
/// enter the window, and a (rare) externally injected event behind the
/// cursor triggers a full window rebuild rather than silent aliasing.
#[derive(Default)]
pub(crate) struct EventQueue {
    /// `WHEEL` buckets of same-time entries.
    wheel: Vec<Vec<WheelEntry>>,
    /// Non-empty-bucket bitmap (`WHEEL / 64` words) for cursor scans.
    bitmap: Vec<u64>,
    /// Window start; all bucket entries fire in `[cursor, cursor+WHEEL)`.
    cursor: SimTime,
    /// Entries currently in wheel buckets (excluding the active bucket).
    wheel_len: usize,
    /// The bucket being drained, sorted descending by `(origin, seq)`.
    active: Vec<WheelEntry>,
    active_at: SimTime,
    active_bucket: usize,
    /// Events outside the wheel window, promoted as the cursor advances.
    overflow: BinaryHeap<Reverse<HeapNode>>,
    slab: Vec<Option<SimEvent>>,
    free: Vec<u32>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL).map(|_| Vec::new()).collect(),
            bitmap: vec![0; WHEEL / 64],
            ..EventQueue::default()
        }
    }

    #[inline]
    fn bucket_insert(&mut self, at: SimTime, entry: WheelEntry) {
        let b = (at as usize) & (WHEEL - 1);
        if self.wheel[b].is_empty() {
            self.bitmap[b / 64] |= 1u64 << (b % 64);
        }
        self.wheel[b].push(entry);
        self.wheel_len += 1;
    }

    pub(crate) fn push(&mut self, ev: QueuedEvent) {
        let at = ev.key.at;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx as usize] = Some(ev.event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slab.len()).expect("< 2^32 queued events");
                self.slab.push(Some(ev.event));
                idx
            }
        };
        let entry = WheelEntry {
            origin: u32::try_from(ev.key.origin).expect("peer ids fit u32"),
            target: u32::try_from(ev.target).expect("peer ids fit u32"),
            seq: ev.key.seq,
            idx,
        };
        if self.wheel_len == 0 && self.active.is_empty() {
            // Empty wheel: restart the window at the earliest pending
            // time (never ahead of the overflow minimum — the cursor must
            // stay a lower bound on every queued event).
            let floor = self
                .overflow
                .peek()
                .map(|Reverse(n)| n.key.at)
                .unwrap_or(at)
                .min(at);
            self.cursor = floor;
        }
        if at >= self.cursor && at - self.cursor < WHEEL as SimTime {
            self.bucket_insert(at, entry);
        } else if at >= self.cursor {
            self.overflow.push(Reverse(HeapNode {
                key: ev.key,
                target: entry.target,
                idx,
            }));
        } else {
            // An externally injected event behind the window start (e.g.
            // `publish_at(now)` after the cursor skipped ahead through an
            // idle gap). Rare: rebuild the window at the new floor.
            self.rebuild_window(at);
            self.bucket_insert(at, entry);
        }
    }

    /// Moves every wheel entry into the overflow heap and restarts the
    /// window at `floor`. Only externally injected out-of-window events
    /// take this path.
    fn rebuild_window(&mut self, floor: SimTime) {
        debug_assert!(self.active.is_empty(), "no injection mid-dispatch");
        for b in 0..WHEEL {
            if self.wheel[b].is_empty() {
                continue;
            }
            let start = (self.cursor as usize) & (WHEEL - 1);
            let at = self.cursor + (((b + WHEEL - start) & (WHEEL - 1)) as SimTime);
            let entries = std::mem::take(&mut self.wheel[b]);
            self.wheel_len -= entries.len();
            for e in entries {
                self.overflow.push(Reverse(HeapNode {
                    key: EventKey {
                        at,
                        origin: e.origin as usize,
                        seq: e.seq,
                    },
                    target: e.target,
                    idx: e.idx,
                }));
            }
        }
        self.bitmap.iter_mut().for_each(|w| *w = 0);
        self.cursor = floor;
    }

    /// First non-empty bucket time at or after the cursor (None if the
    /// wheel is empty). Scans the bitmap word-wise, wrapping once.
    fn scan_next(&self) -> Option<SimTime> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor as usize) & (WHEEL - 1);
        let words = self.bitmap.len();
        let mut word_idx = start / 64;
        // Mask off bits before the cursor in its word.
        let mut word = self.bitmap[word_idx] & (!0u64 << (start % 64));
        for step in 0..=words {
            if word != 0 {
                let b = word_idx * 64 + word.trailing_zeros() as usize;
                let offset = ((b + WHEEL - start) & (WHEEL - 1)) as SimTime;
                return Some(self.cursor + offset);
            }
            if step == words {
                break;
            }
            word_idx = (word_idx + 1) % words;
            word = self.bitmap[word_idx];
            if word_idx == start / 64 {
                // Wrapped to the start word: only bits before the cursor
                // remain to check (times near the window's far end).
                word &= !(!0u64 << (start % 64));
            }
        }
        None
    }

    /// Promotes overflow events that now fit the window.
    fn promote(&mut self) {
        while let Some(Reverse(node)) = self.overflow.peek() {
            if node.key.at - self.cursor >= WHEEL as SimTime {
                break;
            }
            let Reverse(node) = self.overflow.pop().expect("peeked");
            self.bucket_insert(
                node.key.at,
                WheelEntry {
                    origin: u32::try_from(node.key.origin).expect("peer ids fit u32"),
                    target: node.target,
                    seq: node.key.seq,
                    idx: node.idx,
                },
            );
        }
    }

    /// Fire time of the earliest queued event. Advances the window cursor
    /// (and promotes overflow events) as a side effect — cheap when the
    /// active bucket is non-empty, a bitmap scan otherwise.
    pub(crate) fn peek_at(&mut self) -> Option<SimTime> {
        if !self.active.is_empty() {
            return Some(self.active_at);
        }
        let wheel_next = self.scan_next();
        let over_next = self.overflow.peek().map(|Reverse(n)| n.key.at);
        let next = match (wheel_next, over_next) {
            (None, None) => return None,
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (Some(w), Some(o)) => w.min(o),
        };
        // Jump is always forward (every pending event is ≥ cursor), and
        // every wheel entry stays inside the new window: entries are
        // ≥ next and < old cursor + WHEEL ≤ next + WHEEL.
        self.cursor = next;
        if over_next.is_some_and(|o| o - next < WHEEL as SimTime) {
            self.promote();
        }
        Some(next)
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let at = self.peek_at()?;
        if self.active.is_empty() {
            let b = (at as usize) & (WHEEL - 1);
            self.active = std::mem::take(&mut self.wheel[b]);
            self.bitmap[b / 64] &= !(1u64 << (b % 64));
            self.wheel_len -= self.active.len();
            self.active_at = at;
            self.active_bucket = b;
            // Unique (origin, seq) per bucket: descending sort, pop from
            // the back → ascending key order.
            self.active
                .sort_unstable_by_key(|e| Reverse((e.origin, e.seq)));
        }
        let e = self.active.pop().expect("active non-empty");
        if self.active.is_empty() {
            // Recycle the drained buffer (keeps its capacity) into its
            // bucket slot — steady-state pops never allocate.
            self.wheel[self.active_bucket] = std::mem::take(&mut self.active);
        }
        let event = self.slab[e.idx as usize].take().expect("slab occupied");
        self.free.push(e.idx);
        Some(QueuedEvent {
            key: EventKey {
                at,
                origin: e.origin as usize,
                seq: e.seq,
            },
            target: e.target as usize,
            event,
        })
    }
}

/// Sentinel for "no pending event" / "no path between shards". Kept far
/// from `SimTime::MAX` so saturating adds of latencies never wrap into
/// plausible times.
pub(crate) const FAR: SimTime = SimTime::MAX / 4;

/// The shard layout a network of `peers` runs with at a requested shard
/// count: `(chunk, shards)` where peers `[i * chunk, (i+1) * chunk)`
/// belong to shard `i`. Shared by the in-process sharded scheduler and
/// the distributed worker assignment, so both partition identically.
pub(crate) fn shard_layout(peers: usize, shards: usize) -> (usize, usize) {
    let shards = shards.clamp(1, peers.max(1));
    let chunk = peers.div_ceil(shards).max(1);
    (chunk, peers.div_ceil(chunk).max(1))
}

/// The contiguous shard range worker `worker` of `workers` owns —
/// balanced so no worker is empty while `workers ≤ shards` (the first
/// `shards % workers` workers take one extra shard). Deterministic: the
/// assignment is a pure function of the three arguments.
pub(crate) fn worker_shard_range(
    shards: usize,
    workers: usize,
    worker: usize,
) -> std::ops::Range<usize> {
    let workers = workers.clamp(1, shards.max(1));
    let base = shards / workers;
    let rem = shards % workers;
    let lo = (worker.min(workers) * base + worker.min(rem)).min(shards);
    let extra = if worker < rem { 1 } else { 0 };
    let hi = (lo + base + extra).min(shards);
    lo..hi
}

/// Computes per-shard dispatch horizons for a round starting at `start`
/// (the global earliest pending time) into `horizons`, from the current
/// per-shard heads. Events at exactly `t` must still run, so horizons
/// cap at `t + 1`. Pure over its inputs: the in-process scheduler and
/// the distributed coordinator both call this, which is what makes their
/// rounds line up event-for-event.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_horizons(
    lookahead: Lookahead,
    quantum: SimTime,
    dist: &[SimTime],
    cyc: &[SimTime],
    heads: &[SimTime],
    start: SimTime,
    t: SimTime,
    horizons: &mut [SimTime],
) {
    let s = heads.len();
    let cap = t.saturating_add(1);
    match lookahead {
        Lookahead::Fixed => {
            let end = start.saturating_add(quantum).min(cap);
            horizons.iter_mut().for_each(|h| *h = end);
        }
        Lookahead::Adaptive => {
            for i in 0..s {
                let mut h = heads[i].saturating_add(cyc[i]);
                for (j, &head) in heads.iter().enumerate() {
                    if j != i {
                        h = h.min(head.saturating_add(dist[j * s + i]));
                    }
                }
                horizons[i] = h.min(cap);
            }
        }
    }
}

/// How the sharded engine bounds each round (never affects results, only
/// barrier counts and wall-clock speed).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Lookahead {
    /// Per-shard-pair Chandy–Misra horizons from the cross-shard
    /// link-latency matrix (the default).
    #[default]
    Adaptive,
    /// Legacy fixed quantum: every round spans `max(1, latency_min_ms)`
    /// from the globally earliest pending event.
    Fixed,
}

/// Which engine executes the event queue. Results are bit-identical across
/// every variant (and every `WAKU_POOL_THREADS` value); the choice only
/// affects wall-clock speed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Pick automatically: serial for small networks, sharded for large
    /// ones. `WAKU_SIM_SHARDS` (≥ 1; 1 = serial) overrides the heuristic.
    Auto,
    /// Single global event heap on the calling thread.
    Serial,
    /// Event-sharded quantum-stepped engine on `waku-pool`.
    Sharded {
        /// Number of peer shards (clamped to `1..=peers`).
        shards: usize,
    },
}

impl SchedulerKind {
    /// Resolves to the concrete shard count a network of `peers` would run
    /// with (1 ⇒ the serial scheduler).
    pub fn resolve(self, peers: usize) -> usize {
        let clamp = |s: usize| s.clamp(1, peers.max(1));
        match self {
            SchedulerKind::Serial => 1,
            SchedulerKind::Sharded { shards } => clamp(shards),
            SchedulerKind::Auto => {
                if let Some(s) = std::env::var("WAKU_SIM_SHARDS")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                {
                    return clamp(s.max(1));
                }
                if peers < 512 {
                    1
                } else {
                    // ~512 peers per shard, capped so tiny pools aren't
                    // drowned in barrier overhead.
                    clamp((peers / 512).clamp(2, 64))
                }
            }
        }
    }
}

/// Executes queued events against the peer slots up to a target time.
pub(crate) trait Scheduler: Send {
    /// Adds an externally injected event (initial heartbeats, `publish_at`).
    fn enqueue(&mut self, ev: QueuedEvent);
    /// Dispatches every event with `at ≤ t`; returns how many ran.
    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64;
    /// Shard count (1 for the serial engine) — for diagnostics.
    fn shards(&self) -> usize;
    /// Fork-join barrier rounds executed so far (0 for the serial engine).
    fn barriers(&self) -> u64 {
        0
    }
    /// Downcast to the distributed worker-shard engine, when this is one
    /// (the worker session drives rounds directly instead of `run_until`).
    fn as_worker(&mut self) -> Option<&mut WorkerScheduler> {
        None
    }
}

/// Reference implementation: one global min-heap, popped in key order.
pub(crate) struct SerialScheduler {
    queue: EventQueue,
}

impl SerialScheduler {
    pub(crate) fn new() -> Self {
        SerialScheduler {
            queue: EventQueue::new(),
        }
    }
}

impl Scheduler for SerialScheduler {
    fn enqueue(&mut self, ev: QueuedEvent) {
        self.queue.push(ev);
    }

    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64 {
        let mut processed = 0u64;
        let mut out = Vec::new();
        while let Some(at) = self.queue.peek_at() {
            if at > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            processed += 1;
            slots[ev.target].dispatch(ev.target, ev.key.at, ev.event, config, &mut out);
            for e in out.drain(..) {
                self.queue.push(e);
            }
        }
        processed
    }

    fn shards(&self) -> usize {
        1
    }
}

/// One shard's work for one round: drain the shard-local heap up to the
/// shard's horizon, keeping self/intra-shard events local and buffering
/// cross-shard events in the outbox.
struct ShardRound<'a> {
    queue: &'a mut EventQueue,
    slots: &'a mut [PeerSlot],
    /// First peer id owned by this shard.
    base: usize,
    /// Exclusive upper bound on event times this round may dispatch.
    horizon: SimTime,
    outbox: Vec<QueuedEvent>,
    processed: u64,
}

impl ShardRound<'_> {
    fn run(&mut self, config: &NetworkConfig) {
        let mut out = Vec::new();
        while let Some(at) = self.queue.peek_at() {
            if at >= self.horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.processed += 1;
            self.slots[ev.target - self.base]
                .dispatch(ev.target, ev.key.at, ev.event, config, &mut out);
            for e in out.drain(..) {
                if e.target >= self.base && e.target < self.base + self.slots.len() {
                    self.queue.push(e);
                } else {
                    self.outbox.push(e);
                }
            }
        }
    }
}

/// Builds the shard-level shortest-path latency matrix (row-major
/// `dist[j * shards + i]` = minimum delay for an event leaving shard `j`
/// to arrive in shard `i`) plus the per-shard minimum round-trip
/// `cyc[i] = min_{j≠i} dist(i,j) + w(j,i)`.
///
/// Edge weight `w = max(1, latency_min_ms)` is the engine-wide floor the
/// link-latency sampler clamps to; shards without any connecting peer
/// edge get ∞ (multi-hop paths are filled in by Floyd–Warshall).
fn shard_latency_matrix(
    slots: &[PeerSlot],
    chunk: usize,
    shards: usize,
    min_link: SimTime,
) -> (Vec<SimTime>, Vec<SimTime>) {
    let mut dist = vec![FAR; shards * shards];
    let mut direct = vec![FAR; shards * shards];
    for s in 0..shards {
        dist[s * shards + s] = 0;
    }
    for (p, slot) in slots.iter().enumerate() {
        let sp = p / chunk;
        for &q in &slot.neighbors {
            let sq = q / chunk;
            if sp != sq {
                dist[sp * shards + sq] = min_link;
                direct[sp * shards + sq] = min_link;
            }
        }
    }
    for k in 0..shards {
        for j in 0..shards {
            let djk = dist[j * shards + k];
            if djk >= FAR {
                continue;
            }
            for i in 0..shards {
                let via = djk.saturating_add(dist[k * shards + i]);
                if via < dist[j * shards + i] {
                    dist[j * shards + i] = via;
                }
            }
        }
    }
    let cyc = (0..shards)
        .map(|i| {
            (0..shards)
                .filter(|&j| j != i)
                .map(|j| dist[i * shards + j].saturating_add(direct[j * shards + i]))
                .min()
                .unwrap_or(FAR)
                .min(FAR)
        })
        .collect();
    (dist, cyc)
}

/// Event-sharded engine: peers are partitioned into contiguous shards,
/// each with its own event heap; every round runs as one fork-join on
/// `waku-pool`, bounded per shard by the adaptive lookahead horizon (see
/// module docs for the correctness argument).
pub(crate) struct ShardedScheduler {
    queues: Vec<EventQueue>,
    /// Peers per shard (the last shard may be smaller).
    chunk: usize,
    /// Lookahead mode (adaptive horizons vs the legacy fixed quantum).
    lookahead: Lookahead,
    /// `max(1, latency_min_ms)` — the fixed quantum and the matrix floor.
    quantum: SimTime,
    /// Shard-pair shortest-path delays (row-major `[from * shards + to]`).
    dist: Vec<SimTime>,
    /// Minimum round-trip delay through another shard, per shard.
    cyc: Vec<SimTime>,
    /// Fork-join rounds executed (the barriers-per-run metric).
    barriers: u64,
    /// Scratch: earliest pending event per shard.
    heads: Vec<SimTime>,
    /// Scratch: per-shard dispatch horizon for the current round.
    horizons: Vec<SimTime>,
}

impl ShardedScheduler {
    /// `slots` must already have their neighbor lists assigned — the
    /// adaptive horizons are derived from the cross-shard topology.
    pub(crate) fn new(
        peers: usize,
        shards: usize,
        config: &NetworkConfig,
        slots: &[PeerSlot],
    ) -> Self {
        let (chunk, num_queues) = shard_layout(peers, shards);
        let quantum = config.latency_min_ms.max(1);
        let (dist, cyc) = shard_latency_matrix(slots, chunk, num_queues, quantum);
        ShardedScheduler {
            queues: (0..num_queues).map(|_| EventQueue::new()).collect(),
            chunk,
            lookahead: config.lookahead,
            quantum,
            dist,
            cyc,
            barriers: 0,
            heads: vec![FAR; num_queues],
            horizons: vec![0; num_queues],
        }
    }

    /// Computes each shard's dispatch horizon for a round starting at
    /// `start` (the global earliest pending time), given `self.heads`.
    fn compute_horizons(&mut self, start: SimTime, t: SimTime) {
        fill_horizons(
            self.lookahead,
            self.quantum,
            &self.dist,
            &self.cyc,
            &self.heads,
            start,
            t,
            &mut self.horizons,
        );
    }
}

impl Scheduler for ShardedScheduler {
    fn enqueue(&mut self, ev: QueuedEvent) {
        self.queues[ev.target / self.chunk].push(ev);
    }

    fn run_until(&mut self, slots: &mut [PeerSlot], config: &NetworkConfig, t: SimTime) -> u64 {
        let chunk = self.chunk;
        let mut processed = 0u64;
        loop {
            for (head, queue) in self.heads.iter_mut().zip(self.queues.iter_mut()) {
                *head = queue.peek_at().unwrap_or(FAR).min(FAR);
            }
            let Some(&start) = self.heads.iter().min() else {
                break;
            };
            if start > t {
                break;
            }
            self.compute_horizons(start, t);
            // Only shards with dispatchable work join the round; the rest
            // have nothing below their horizon and produce no output.
            let mut rounds: Vec<ShardRound> = self
                .queues
                .iter_mut()
                .zip(slots.chunks_mut(chunk))
                .enumerate()
                .filter(|(i, _)| self.heads[*i] < self.horizons[*i])
                .map(|(i, (queue, slots))| ShardRound {
                    queue,
                    slots,
                    base: i * chunk,
                    horizon: self.horizons[i],
                    outbox: Vec::new(),
                    processed: 0,
                })
                .collect();
            waku_pool::par_for_each_mut(&mut rounds, |_, round| round.run(config));
            self.barriers += 1;
            let results: Vec<(u64, Vec<QueuedEvent>)> = rounds
                .into_iter()
                .map(|r| (r.processed, r.outbox))
                .collect();
            // Round barrier: drain outboxes in fixed shard order.
            for (count, outbox) in results {
                processed += count;
                for ev in outbox {
                    self.queues[ev.target / chunk].push(ev);
                }
            }
        }
        processed
    }

    fn shards(&self) -> usize {
        self.queues.len()
    }

    fn barriers(&self) -> u64 {
        self.barriers
    }
}

/// One distributed worker's slice of the sharded engine: the event
/// queues of a contiguous shard range, plus the *full* shard-latency
/// matrix (every worker replays the whole deterministic network
/// construction, so the matrix is identical in all of them — the
/// coordinator cross-checks that).
///
/// Unlike [`ShardedScheduler`] it has no driving loop: the coordinator
/// owns head collection and horizon computation, and calls
/// [`WorkerScheduler::round`] (through the worker session) once per
/// global barrier. Events targeting peers outside the owned range are
/// dropped on [`Scheduler::enqueue`] — the worker that owns them replays
/// the same construction and enqueues its own copy — and returned from
/// `round` as the cross-worker outbox.
pub(crate) struct WorkerScheduler {
    /// Event queues for owned shards only (`shard_base ..`).
    queues: Vec<EventQueue>,
    chunk: usize,
    /// First owned shard index.
    shard_base: usize,
    dist: Vec<SimTime>,
    cyc: Vec<SimTime>,
    barriers: u64,
}

impl WorkerScheduler {
    /// `slots` must have neighbor lists assigned (full replayed network).
    pub(crate) fn new(
        peers: usize,
        shards: usize,
        workers: usize,
        worker: usize,
        config: &NetworkConfig,
        slots: &[PeerSlot],
    ) -> Self {
        let (chunk, shards_total) = shard_layout(peers, shards);
        let range = worker_shard_range(shards_total, workers, worker);
        let quantum = config.latency_min_ms.max(1);
        let (dist, cyc) = shard_latency_matrix(slots, chunk, shards_total, quantum);
        WorkerScheduler {
            queues: range.clone().map(|_| EventQueue::new()).collect(),
            chunk,
            shard_base: range.start,
            dist,
            cyc,
            barriers: 0,
        }
    }

    /// Full shard-pair shortest-path matrix (row-major, `shards²`).
    pub(crate) fn dist(&self) -> &[SimTime] {
        &self.dist
    }

    /// Per-shard minimum round-trip delays (one per shard, all workers).
    pub(crate) fn cyc(&self) -> &[SimTime] {
        &self.cyc
    }

    /// Earliest pending event time per owned shard ([`FAR`] when empty),
    /// exactly as the in-process round loop computes its heads.
    pub(crate) fn heads(&mut self) -> Vec<SimTime> {
        self.queues
            .iter_mut()
            .map(|q| q.peek_at().unwrap_or(FAR).min(FAR))
            .collect()
    }

    /// Accepts a cross-worker event delivered by the coordinator.
    /// `debug_assert`s ownership — the coordinator routes by shard.
    pub(crate) fn inject(&mut self, ev: QueuedEvent) {
        let shard = ev.target / self.chunk;
        debug_assert!(
            shard >= self.shard_base && shard < self.shard_base + self.queues.len(),
            "coordinator delivered an event for shard {shard} to worker base {}",
            self.shard_base
        );
        self.queues[shard - self.shard_base].push(ev);
    }

    /// Runs one barrier round: dispatches every owned shard with a head
    /// strictly below its horizon (`horizons` is the coordinator-computed
    /// slice for the owned range), keeps intra-worker cross-shard events
    /// local (pushed in fixed shard order, same as the in-process
    /// barrier drain), and returns `(processed, cross_worker_outbox)`.
    pub(crate) fn round(
        &mut self,
        slots: &mut [PeerSlot],
        config: &NetworkConfig,
        horizons: &[SimTime],
    ) -> (u64, Vec<QueuedEvent>) {
        debug_assert_eq!(horizons.len(), self.queues.len());
        let chunk = self.chunk;
        let shard_base = self.shard_base;
        let owned = self.queues.len();
        let heads = self.heads();
        let mut rounds: Vec<ShardRound> = self
            .queues
            .iter_mut()
            .zip(slots.chunks_mut(chunk).skip(shard_base))
            .enumerate()
            .filter(|(i, _)| heads[*i] < horizons[*i])
            .map(|(i, (queue, slots))| ShardRound {
                queue,
                slots,
                base: (shard_base + i) * chunk,
                horizon: horizons[i],
                outbox: Vec::new(),
                processed: 0,
            })
            .collect();
        waku_pool::par_for_each_mut(&mut rounds, |_, round| round.run(config));
        self.barriers += 1;
        let results: Vec<(u64, Vec<QueuedEvent>)> = rounds
            .into_iter()
            .map(|r| (r.processed, r.outbox))
            .collect();
        let mut processed = 0u64;
        let mut cross_worker = Vec::new();
        // Barrier drain in fixed shard order — identical to in-process.
        for (count, outbox) in results {
            processed += count;
            for ev in outbox {
                let shard = ev.target / chunk;
                if shard >= shard_base && shard < shard_base + owned {
                    self.queues[shard - shard_base].push(ev);
                } else {
                    cross_worker.push(ev);
                }
            }
        }
        (processed, cross_worker)
    }
}

impl Scheduler for WorkerScheduler {
    fn enqueue(&mut self, ev: QueuedEvent) {
        let shard = ev.target / self.chunk;
        if shard >= self.shard_base && shard < self.shard_base + self.queues.len() {
            self.queues[shard - self.shard_base].push(ev);
        }
        // Non-owned targets: dropped. The owning worker replays the same
        // deterministic construction/workload and enqueues its own copy.
    }

    fn run_until(&mut self, _slots: &mut [PeerSlot], _config: &NetworkConfig, _t: SimTime) -> u64 {
        unreachable!("worker shards are driven round-by-round by the coordinator")
    }

    fn shards(&self) -> usize {
        // Owned count: per-worker `engine_shards` gauges sum to the total
        // across the coordinator's snapshot merge.
        self.queues.len()
    }

    fn barriers(&self) -> u64 {
        self.barriers
    }

    fn as_worker(&mut self) -> Option<&mut WorkerScheduler> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PeerSlot;

    fn qe(at: SimTime, origin: usize, seq: u64, target: usize) -> QueuedEvent {
        QueuedEvent {
            key: EventKey { at, origin, seq },
            target,
            event: SimEvent::Heartbeat,
        }
    }

    /// The wheel pops in exactly the total key order a min-heap would,
    /// for any interleaving of near (wheel) and far (overflow) times.
    #[test]
    fn event_queue_pops_in_key_order() {
        let mut q = EventQueue::new();
        // A scrambled mix: same-time bursts, far-future overflow events,
        // pushes interleaved with pops.
        let mut times: Vec<SimTime> = vec![5, 3, 3, 3, 9_000, 5, 40_000, 7, 3, 9_000, 2_100];
        for (i, &at) in times.iter().enumerate() {
            q.push(qe(at, i % 4, i as u64, i));
        }
        let mut popped: Vec<(SimTime, usize, u64)> = Vec::new();
        // Interleave: drain two, push two more, drain the rest.
        for _ in 0..2 {
            let ev = q.pop().expect("non-empty");
            popped.push((ev.key.at, ev.key.origin, ev.key.seq));
        }
        for (i, &at) in [(100, 4u64), (9_000, 99u64)].iter().enumerate() {
            q.push(qe(at.0, 9, at.1, i));
            times.push(at.0);
        }
        while let Some(ev) = q.pop() {
            popped.push((ev.key.at, ev.key.origin, ev.key.seq));
        }
        let mut expected = popped.clone();
        expected.sort_unstable();
        // Ascending and complete (the first two popped were the global
        // minima, so the full sequence is sorted end to end).
        assert_eq!(popped, expected);
        assert_eq!(popped.len(), times.len());
        assert!(q.pop().is_none());
    }

    /// Events injected behind an advanced cursor (late `publish_at`)
    /// trigger the window rebuild and still pop in order.
    #[test]
    fn event_queue_accepts_events_behind_the_cursor() {
        let mut q = EventQueue::new();
        q.push(qe(10, 0, 0, 0));
        q.push(qe(5_000, 0, 1, 0)); // beyond the wheel span → overflow
        assert_eq!(q.pop().unwrap().key.at, 10);
        // Cursor has advanced to 5 000 via peek; inject at 100.
        assert_eq!(q.peek_at(), Some(5_000));
        q.push(qe(100, 1, 0, 1));
        q.push(qe(60, 2, 0, 2));
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.key.at).collect();
        assert_eq!(order, vec![60, 100, 5_000]);
    }

    /// Same-time events pop by (origin, seq) — the engine's total order.
    #[test]
    fn event_queue_orders_within_a_millisecond() {
        let mut q = EventQueue::new();
        q.push(qe(7, 2, 0, 0));
        q.push(qe(7, 0, 5, 0));
        q.push(qe(7, 0, 2, 0));
        q.push(qe(7, 1, 9, 0));
        let order: Vec<(usize, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.key.origin, e.key.seq))
            .collect();
        assert_eq!(order, vec![(0, 2), (0, 5), (1, 9), (2, 0)]);
    }

    #[test]
    fn worker_ranges_partition_the_shards() {
        for shards in 1..=9usize {
            for workers in 1..=6usize {
                let w = workers.clamp(1, shards);
                let mut covered = vec![0u32; shards];
                for i in 0..w {
                    let range = worker_shard_range(shards, workers, i);
                    assert!(!range.is_empty(), "shards={shards} workers={workers} i={i}");
                    for s in range {
                        covered[s] += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "shards={shards} workers={workers}: {covered:?}"
                );
            }
        }
    }

    #[test]
    fn shard_layout_matches_scheduler_construction() {
        for (peers, shards) in [(10, 3), (100, 7), (4, 4), (512, 2), (1, 5)] {
            let slots = ring_slots(peers);
            let s = ShardedScheduler::new(peers, shards, &NetworkConfig::default(), &slots);
            let (chunk, count) = shard_layout(peers, shards);
            assert_eq!(chunk, s.chunk);
            assert_eq!(count, s.queues.len());
        }
    }

    #[test]
    fn kind_resolution() {
        assert_eq!(SchedulerKind::Serial.resolve(10_000), 1);
        assert_eq!(SchedulerKind::Sharded { shards: 8 }.resolve(100), 8);
        // Sharded never exceeds the peer count.
        assert_eq!(SchedulerKind::Sharded { shards: 64 }.resolve(10), 10);
        assert_eq!(SchedulerKind::Auto.resolve(100), 1);
        assert!(SchedulerKind::Auto.resolve(10_000) >= 2);
    }

    fn ring_slots(peers: usize) -> Vec<PeerSlot> {
        (0..peers)
            .map(|p| {
                let mut slot = PeerSlot::new(1, p, 0, 8);
                slot.neighbors = vec![(p + peers - 1) % peers, (p + 1) % peers];
                slot
            })
            .collect()
    }

    #[test]
    fn sharded_partition_covers_all_peers() {
        let config = NetworkConfig::default();
        for (peers, shards) in [(10, 3), (100, 7), (4, 4), (512, 2)] {
            let slots = ring_slots(peers);
            let s = ShardedScheduler::new(peers, shards, &config, &slots);
            // Every peer maps to a valid queue.
            for p in 0..peers {
                assert!(
                    p / s.chunk < s.queues.len(),
                    "peers={peers} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn latency_matrix_uses_multi_hop_paths() {
        // 9 peers in a ring, 3 shards of 3: shard 0 and 2 touch (ring
        // wrap), every pair is adjacent → dist = w; a line topology
        // instead isolates shards 0 and 2 by one hop through shard 1.
        let peers = 9;
        let mut slots = ring_slots(peers);
        // Break the ring into a line: 0 and 8 are no longer neighbors.
        slots[0].neighbors = vec![1];
        slots[8].neighbors = vec![7];
        let config = NetworkConfig {
            latency_min_ms: 20,
            ..NetworkConfig::default()
        };
        let s = ShardedScheduler::new(peers, 3, &config, &slots);
        let n = s.queues.len();
        assert_eq!(n, 3);
        assert_eq!(s.dist[1], 20, "adjacent shards: one hop"); // 0 → 1
        assert_eq!(s.dist[2], 40, "line ends: two hops"); // 0 → 2
        assert!(s.cyc[0] >= 40, "round trips cost at least two hops");
    }

    #[test]
    fn adaptive_horizons_extend_past_the_fixed_quantum_when_quiet() {
        let peers = 9;
        let slots = ring_slots(peers);
        let config = NetworkConfig {
            latency_min_ms: 20,
            ..NetworkConfig::default()
        };
        let mut s = ShardedScheduler::new(peers, 3, &config, &slots);
        // Shard 0 busy at t=100; shards 1 and 2 idle until t=1000.
        s.heads = vec![100, 1_000, 1_000];
        s.compute_horizons(100, 5_000);
        // Fixed quantum would stop at 120; adaptive lets shard 0 run to
        // min(1000+20, 1000+20, 100+cyc) — bounded by its own echo.
        assert!(
            s.horizons[0] > 120,
            "horizon {} should exceed the fixed quantum",
            s.horizons[0]
        );
        assert!(
            s.horizons[0] <= 100 + s.cyc[0],
            "bounded by the self round-trip"
        );
        // The idle shards may not advance past what shard 0 could send.
        assert_eq!(s.horizons[1], 100 + s.dist[1]);
    }
}
