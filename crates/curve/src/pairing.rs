//! The optimal ate pairing on BN254.
//!
//! Strategy: correctness over micro-optimization. G2 points are *untwisted*
//! into `E(Fp12)` (for the D-twist the map is `(x', y') ↦ (x'·w², y'·w³)`,
//! which is coefficient shuffling, not multiplication), G1 points are
//! embedded via the base field, and Miller's algorithm runs in plain affine
//! coordinates over Fp12. The Frobenius steps of the optimal ate formula
//! then reduce to coordinate-wise Frobenius maps — no twist-specific
//! correction constants to get wrong. The final exponentiation does the easy
//! part with Frobenius/conjugation and the hard part by a straight
//! square-and-multiply over the derived exponent `(p⁴ − p² + 1)/r`.
//!
//! The BN parameter is `x = 4965661367192848881`; the Miller loop runs over
//! `6x + 2 = 29793968203157093288`.

use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::{Fq, Fr};
use waku_arith::traits::{Field, PrimeField};

use crate::fp12::Fp12;
use crate::fp6::Fp6;
use crate::g1::G1Affine;
use crate::g2::G2Affine;

/// The BN curve parameter `x`.
pub const BN_X: u64 = 4965661367192848881;
/// Miller loop count `6x + 2` (65 bits, hence `u128`).
pub const ATE_LOOP_COUNT: u128 = 6 * (BN_X as u128) + 2;

/// A (never-infinite during the loop) affine point on `E(Fp12)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct EPoint {
    x: Fp12,
    y: Fp12,
    infinity: bool,
}

impl EPoint {
    fn infinity() -> Self {
        EPoint {
            x: Fp12::zero(),
            y: Fp12::one(),
            infinity: true,
        }
    }

    fn neg(&self) -> Self {
        EPoint {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Coordinate-wise Frobenius: the image of an `E(Fp12)` point under
    /// `π_p^power` is again on `E` because the curve is defined over Fq.
    fn frobenius(&self, power: usize) -> Self {
        EPoint {
            x: self.x.frobenius_map(power),
            y: self.y.frobenius_map(power),
            infinity: self.infinity,
        }
    }
}

/// Untwists a G2 point to `E(Fp12)`: `(x', y') ↦ (x'·w², y'·w³)`.
/// `w² = v` and `w³ = v·w`, so this just places the Fp2 coefficients.
fn untwist(q: &G2Affine) -> EPoint {
    if q.is_identity() {
        return EPoint::infinity();
    }
    let x = Fp12::new(
        Fp6::new(crate::fp2::Fp2::zero(), q.x, crate::fp2::Fp2::zero()),
        Fp6::zero(),
    );
    let y = Fp12::new(
        Fp6::zero(),
        Fp6::new(crate::fp2::Fp2::zero(), q.y, crate::fp2::Fp2::zero()),
    );
    EPoint {
        x,
        y,
        infinity: false,
    }
}

/// Embeds a G1 point's coordinates into Fp12.
fn embed(p: &G1Affine) -> (Fp12, Fp12) {
    (Fp12::from_base(p.x), Fp12::from_base(p.y))
}

/// Tangent line at `t` evaluated at `(px, py)`; advances `t ← 2t`.
fn line_double(t: &mut EPoint, px: Fp12, py: Fp12) -> Fp12 {
    debug_assert!(!t.infinity);
    let three = Fp12::from_base(Fq::from_u64(3));
    let two = Fp12::from_base(Fq::from_u64(2));
    let lambda = three * t.x.square() * (two * t.y).inverse().expect("2y ≠ 0 on prime-order point");
    let x3 = lambda.square() - t.x.double();
    let y3 = lambda * (t.x - x3) - t.y;
    let l = py - t.y - lambda * (px - t.x);
    t.x = x3;
    t.y = y3;
    l
}

/// Chord line through `t` and `q` evaluated at `(px, py)`; advances
/// `t ← t + q`. Handles the vertical-line case defensively.
fn line_add(t: &mut EPoint, q: &EPoint, px: Fp12, py: Fp12) -> Fp12 {
    debug_assert!(!t.infinity && !q.infinity);
    if t.x == q.x {
        if t.y == q.y {
            return line_double(t, px, py);
        }
        // Vertical line x − x_T; resulting point is infinity.
        let l = px - t.x;
        *t = EPoint::infinity();
        return l;
    }
    let lambda = (q.y - t.y) * (q.x - t.x).inverse().expect("distinct x");
    let x3 = lambda.square() - t.x - q.x;
    let y3 = lambda * (t.x - x3) - t.y;
    let l = py - t.y - lambda * (px - t.x);
    t.x = x3;
    t.y = y3;
    l
}

/// Product of Miller loops `∏ f_{6x+2, Qᵢ}(Pᵢ) · (frobenius line steps)`,
/// *without* the final exponentiation. Pairs with an identity element on
/// either side are skipped (contribute the neutral factor 1).
pub fn miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    let active: Vec<((Fp12, Fp12), EPoint)> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| (embed(p), untwist(q)))
        .collect();
    if active.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let mut ts: Vec<EPoint> = active.iter().map(|(_, q)| *q).collect();

    let loop_bits = 128 - ATE_LOOP_COUNT.leading_zeros();
    // Standard double-and-add over the bits of 6x+2, MSB (skipped) downward.
    for i in (0..loop_bits - 1).rev() {
        f = f.square();
        for (((px, py), _), t) in active.iter().zip(ts.iter_mut()) {
            f *= line_double(t, *px, *py);
        }
        if (ATE_LOOP_COUNT >> i) & 1 == 1 {
            for (((px, py), q), t) in active.iter().zip(ts.iter_mut()) {
                f *= line_add(t, q, *px, *py);
            }
        }
    }

    // Optimal-ate correction: two Frobenius addition steps.
    for (((px, py), q), t) in active.iter().zip(ts.iter_mut()) {
        let q1 = q.frobenius(1);
        let q2 = q.frobenius(2).neg();
        f *= line_add(t, &q1, *px, *py);
        f *= line_add(t, &q2, *px, *py);
    }
    f
}

/// The hard-part exponent `(p⁴ − p² + 1) / r`, derived once.
fn hard_part_exponent() -> &'static Vec<u64> {
    static CELL: OnceLock<Vec<u64>> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
        let r = BigUint::from_limbs(&<Fr as PrimeField>::MODULUS);
        let num = p.pow(4).sub(&p.pow(2)).add(&BigUint::one());
        let (q, rem) = num.div_rem(&r);
        assert!(rem.is_zero(), "BN identity: r | p⁴ − p² + 1");
        q.limbs().to_vec()
    })
}

/// Final exponentiation `f ↦ f^((p¹²−1)/r)`.
///
/// Returns `None` if `f` is zero (which a Miller loop never produces for
/// valid points).
pub fn final_exponentiation(f: &Fp12) -> Option<Fp12> {
    // Easy part: f^(p⁶−1) = conj(f)·f⁻¹, then ^(p²+1).
    let f_inv = f.inverse()?;
    let f1 = f.conjugate() * f_inv;
    let f2 = f1.frobenius_map(2) * f1;
    // Hard part: ^( (p⁴−p²+1)/r ).
    Some(f2.pow(hard_part_exponent()))
}

/// The full optimal ate pairing `e: G1 × G2 → μ_r ⊂ Fp12`.
///
/// # Examples
///
/// ```
/// use waku_curve::{g1::G1Affine, g2::G2Affine, pairing::pairing};
/// use waku_arith::traits::Field;
/// let e = pairing(&G1Affine::generator(), &G2Affine::generator());
/// assert!(!e.is_zero());
/// ```
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fp12 {
    final_exponentiation(&miller_loop(&[(*p, *q)])).expect("miller loop output is nonzero")
}

/// Product of pairings `∏ e(Pᵢ, Qᵢ)` sharing a single final exponentiation
/// (the shape Groth16 verification needs).
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    final_exponentiation(&miller_loop(pairs)).expect("miller loop output is nonzero")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use crate::g2::G2Projective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_is_nondegenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert_ne!(e, Fp12::one(), "e(G1, G2) must be a primitive r-th root");
        assert!(!e.is_zero());
        // It must have order dividing r.
        assert_eq!(e.pow(&<Fr as PrimeField>::MODULUS), Fp12::one());
    }

    #[test]
    fn pairing_with_identity_is_one() {
        assert_eq!(
            pairing(&G1Affine::identity(), &G2Affine::generator()),
            Fp12::one()
        );
        assert_eq!(
            pairing(&G1Affine::generator(), &G2Affine::identity()),
            Fp12::one()
        );
    }

    #[test]
    fn bilinearity() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::generator().mul(b).to_affine();
        let lhs = pairing(&p, &q);
        let base = pairing(&G1Affine::generator(), &G2Affine::generator());
        let ab = a * b;
        let rhs = base.pow(&ab.to_canonical_limbs());
        assert_eq!(lhs, rhs, "e(aG, bH) = e(G, H)^(ab)");
    }

    #[test]
    fn linearity_in_first_argument() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g = G1Projective::generator();
        let q = G2Affine::generator();
        let sum = g.mul(a).add(&g.mul(b)).to_affine();
        let lhs = pairing(&sum, &q);
        let rhs = pairing(&g.mul(a).to_affine(), &q) * pairing(&g.mul(b).to_affine(), &q);
        assert_eq!(lhs, rhs, "e(P1+P2, Q) = e(P1,Q)·e(P2,Q)");
    }

    #[test]
    fn inverse_point_inverts_pairing() {
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let e_neg = pairing(&p.neg(), &q);
        assert_eq!(e * e_neg, Fp12::one(), "e(-P, Q) = e(P, Q)^(-1)");
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = StdRng::seed_from_u64(9);
        let p1 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let p2 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q1 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q2 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let combined = multi_pairing(&[(p1, q1), (p2, q2)]);
        let separate = pairing(&p1, &q1) * pairing(&p2, &q2);
        assert_eq!(combined, separate);
    }

    #[test]
    fn untwisted_generator_is_on_e_fp12() {
        let q = untwist(&G2Affine::generator());
        let b = Fp12::from_base(Fq::from_u64(3));
        assert_eq!(
            q.y.square(),
            q.x.square() * q.x + b,
            "untwist must land on y² = x³ + 3 over Fp12"
        );
    }

    #[test]
    fn groth16_shape_identity() {
        // e(aP, bQ) · e(-abP, Q) = 1 — the cancellation pattern the
        // verifier relies on.
        let mut rng = StdRng::seed_from_u64(11);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let left = multi_pairing(&[
            (g1.mul(a).to_affine(), g2.mul(b).to_affine()),
            (g1.mul(a * b).neg().to_affine(), G2Affine::generator()),
        ]);
        assert_eq!(left, Fp12::one());
    }
}
