//! The optimal ate pairing on BN254.
//!
//! The Miller loop runs in *twist coordinates*: the accumulator `T` and the
//! line slopes stay in Fp2, because the untwist `(x', y') ↦ (x'·w², y'·w³)`
//! maps the affine group law on `E'(Fp2)` to the one on `E(Fp12)`
//! coefficient-for-coefficient (`λ = λ'·w`, so `x₃` stays in the `w²` slot
//! and `y₃` in the `w³` slot). A line evaluated at an embedded G1 point
//! `(px, py)` is then the sparse element
//!
//! ```text
//! l = py − (λ'·px)·w + (λ'·x' − y')·w³,
//! ```
//!
//! assembled by coefficient placement. The two Frobenius correction steps
//! of the optimal ate formula become the GLS endomorphism `ψ` in twist
//! coordinates (see [`crate::endo`]): `Q₁ = ψ(Q)`, `Q₂ = −ψ²(Q)`.
//!
//! Two batching levers sit on top:
//!
//! * [`G2Prepared`] — for a *fixed* G2 point the sequence of line
//!   coefficients `(λ', x', y')` depends only on the point, so a verifier
//!   precomputes them once and each pairing replays ~90 stored
//!   coefficients with no G2 arithmetic and no inversions at all.
//! * [`miller_loop_mixed`] — runs any number of dynamic and prepared pairs
//!   under one shared `f`-squaring chain, and amortizes the dynamic pairs'
//!   slope denominators with one Fp2 batch inversion per step. This is the
//!   engine under batch Groth16 verification.
//!
//! The final exponentiation does the easy part with Frobenius/conjugation
//! and the hard part by a straight square-and-multiply over the derived
//! exponent `(p⁴ − p² + 1)/r`.
//!
//! The BN parameter is `x = 4965661367192848881`; the Miller loop runs over
//! `6x + 2 = 29793968203157093288`.

use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::{Fq, Fr};
use waku_arith::traits::{Field, PrimeField};

use crate::endo::psi;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::point::BatchInvert;

/// The BN curve parameter `x`.
pub const BN_X: u64 = 4965661367192848881;
/// Miller loop count `6x + 2` (65 bits, hence `u128`).
pub const ATE_LOOP_COUNT: u128 = 6 * (BN_X as u128) + 2;

/// One recorded (or freshly computed) Miller-loop line, in twist
/// coordinates relative to the pre-step accumulator.
#[derive(Copy, Clone, Debug)]
enum LineCoeff {
    /// Tangent or chord with slope `λ'` through `(x', y')`.
    Line { lambda: Fp2, x: Fp2, y: Fp2 },
    /// Vertical line `X − x'·w²` (the points cancelled).
    Vertical { x: Fp2 },
    /// A step touching the point at infinity: neutral factor.
    One,
}

/// Denominator of the tangent slope at `t` (placeholder 1 when no
/// inversion will be needed), collected before the batch inversion.
fn double_denom(t: &G2Affine) -> Fp2 {
    if t.is_identity() {
        Fp2::one()
    } else {
        t.y.double()
    }
}

/// Denominator of the chord slope through `t` and `q` (placeholder 1 for
/// the identity/vertical cases). Classification is a pure function of the
/// two inputs, so the collection and application passes agree.
fn add_denom(t: &G2Affine, q: &G2Affine) -> Fp2 {
    if t.is_identity() || q.is_identity() {
        Fp2::one()
    } else if t.x == q.x {
        if t.y == q.y {
            t.y.double()
        } else {
            Fp2::one()
        }
    } else {
        q.x - t.x
    }
}

/// Tangent step `t ← 2t` given the inverted denominator; returns the line.
fn double_step(t: &mut G2Affine, inv: &Fp2) -> LineCoeff {
    if t.is_identity() {
        return LineCoeff::One;
    }
    let xx = t.x.square();
    let lambda = (xx.double() + xx) * *inv;
    let coeff = LineCoeff::Line {
        lambda,
        x: t.x,
        y: t.y,
    };
    let x3 = lambda.square() - t.x.double();
    let y3 = lambda * (t.x - x3) - t.y;
    *t = G2Affine::new_unchecked(x3, y3);
    coeff
}

/// Chord step `t ← t + q` given the inverted denominator; returns the
/// line. Handles the degenerate cases (identity inputs, doubling,
/// cancellation) the same way in both the prepare and replay paths.
fn add_step(t: &mut G2Affine, q: &G2Affine, inv: &Fp2) -> LineCoeff {
    if q.is_identity() {
        return LineCoeff::One;
    }
    if t.is_identity() {
        *t = *q;
        return LineCoeff::One;
    }
    if t.x == q.x {
        if t.y == q.y {
            return double_step(t, inv);
        }
        let coeff = LineCoeff::Vertical { x: t.x };
        *t = G2Affine::identity();
        return coeff;
    }
    let lambda = (q.y - t.y) * *inv;
    let coeff = LineCoeff::Line {
        lambda,
        x: t.x,
        y: t.y,
    };
    let x3 = lambda.square() - t.x - q.x;
    let y3 = lambda * (t.x - x3) - t.y;
    *t = G2Affine::new_unchecked(x3, y3);
    coeff
}

/// Evaluates a recorded line at the embedded G1 point `(px, py)`,
/// assembling the sparse Fp12 value by coefficient placement
/// (`1 → c0.c0`, `w² = v → c0.c1`, `w → c1.c0`, `w³ = v·w → c1.c1`).
fn eval_line(coeff: &LineCoeff, px: Fq, py: Fq) -> Fp12 {
    match coeff {
        LineCoeff::Line { lambda, x, y } => Fp12::new(
            Fp6::new(Fp2::from_base(py), Fp2::zero(), Fp2::zero()),
            Fp6::new(-lambda.scale(px), *lambda * *x - *y, Fp2::zero()),
        ),
        LineCoeff::Vertical { x } => {
            Fp12::new(Fp6::new(Fp2::from_base(px), -*x, Fp2::zero()), Fp6::zero())
        }
        LineCoeff::One => Fp12::one(),
    }
}

/// Precomputed Miller-loop line coefficients for a fixed G2 point.
///
/// Replaying the stored `(λ', x', y')` triples costs no G2 arithmetic and
/// no field inversions, so pairings against fixed points (the `γ`/`δ`
/// elements of a Groth16 verifying key) skip the accumulator work
/// entirely. ~90 triples ≈ 8.6 KiB per point.
#[derive(Clone, Debug)]
pub struct G2Prepared {
    coeffs: Vec<LineCoeff>,
    infinity: bool,
}

impl G2Prepared {
    /// Runs the ate-loop schedule once for `q`, recording every line.
    pub fn new(q: &G2Affine) -> Self {
        if q.is_identity() {
            return G2Prepared {
                coeffs: Vec::new(),
                infinity: true,
            };
        }
        let mut t = *q;
        let mut coeffs = Vec::with_capacity(103);
        let loop_bits = 128 - ATE_LOOP_COUNT.leading_zeros();
        for i in (0..loop_bits - 1).rev() {
            let inv = double_denom(&t)
                .inverse()
                .expect("no 2-torsion on the twist");
            coeffs.push(double_step(&mut t, &inv));
            if (ATE_LOOP_COUNT >> i) & 1 == 1 {
                let inv = add_denom(&t, q).inverse().expect("placeholder is 1");
                coeffs.push(add_step(&mut t, q, &inv));
            }
        }
        let q1 = psi(q);
        let q2 = psi(&q1).neg();
        for corr in [&q1, &q2] {
            let inv = add_denom(&t, corr).inverse().expect("placeholder is 1");
            coeffs.push(add_step(&mut t, corr, &inv));
        }
        G2Prepared {
            coeffs,
            infinity: false,
        }
    }
}

impl From<&G2Affine> for G2Prepared {
    fn from(q: &G2Affine) -> Self {
        G2Prepared::new(q)
    }
}

/// A dynamic pair's loop state: the embedded G1 coordinates, the original
/// G2 point, and the running accumulator.
struct DynPair {
    px: Fq,
    py: Fq,
    q: G2Affine,
    t: G2Affine,
}

/// Product of Miller loops over `dynamic` (fresh G2 points) and `prepared`
/// (fixed G2 points with recorded lines) pairs, sharing one `f`-squaring
/// chain, *without* the final exponentiation.
///
/// All dynamic pairs advance in lock-step, so each doubling/addition phase
/// needs a single Fp2 batch inversion across the whole batch — the
/// marginal pairing cost of one more pair is roughly its line arithmetic.
/// Pairs with an identity element on either side are skipped (contribute
/// the neutral factor 1).
pub fn miller_loop_mixed(
    dynamic: &[(G1Affine, G2Affine)],
    prepared: &[(G1Affine, &G2Prepared)],
) -> Fp12 {
    let mut dyns: Vec<DynPair> = dynamic
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| DynPair {
            px: p.x,
            py: p.y,
            q: *q,
            t: *q,
        })
        .collect();
    let preps: Vec<(Fq, Fq, &G2Prepared)> = prepared
        .iter()
        .filter(|(p, prep)| !p.is_identity() && !prep.infinity)
        .map(|(p, prep)| (p.x, p.y, *prep))
        .collect();
    if dyns.is_empty() && preps.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let mut denoms: Vec<Fp2> = Vec::with_capacity(dyns.len());
    let mut cursor = 0usize;

    // One double or add phase across every pair: collect the dynamic
    // pairs' denominators, invert them together, step + evaluate, then
    // replay the prepared pairs' stored coefficient for this position.
    macro_rules! phase {
        ($denom:expr, $step:expr) => {{
            denoms.clear();
            for d in dyns.iter() {
                #[allow(clippy::redundant_closure_call)]
                denoms.push($denom(d));
            }
            Fp2::batch_invert(&mut denoms);
            for (d, inv) in dyns.iter_mut().zip(denoms.iter()) {
                #[allow(clippy::redundant_closure_call)]
                let coeff = $step(d, inv);
                f *= eval_line(&coeff, d.px, d.py);
            }
            for (px, py, prep) in preps.iter() {
                f *= eval_line(&prep.coeffs[cursor], *px, *py);
            }
            cursor += 1;
        }};
    }

    let loop_bits = 128 - ATE_LOOP_COUNT.leading_zeros();
    // Standard double-and-add over the bits of 6x+2, MSB (skipped) downward.
    for i in (0..loop_bits - 1).rev() {
        f = f.square();
        phase!(
            |d: &DynPair| double_denom(&d.t),
            |d: &mut DynPair, inv: &Fp2| double_step(&mut d.t, inv)
        );
        if (ATE_LOOP_COUNT >> i) & 1 == 1 {
            phase!(
                |d: &DynPair| add_denom(&d.t, &d.q),
                |d: &mut DynPair, inv: &Fp2| {
                    let q = d.q;
                    add_step(&mut d.t, &q, inv)
                }
            );
        }
    }

    // Optimal-ate correction: two Frobenius addition steps, Q₁ = ψ(Q) and
    // Q₂ = −ψ²(Q) in twist coordinates.
    let corrections: Vec<(G2Affine, G2Affine)> = dyns
        .iter()
        .map(|d| {
            let q1 = psi(&d.q);
            let q2 = psi(&q1).neg();
            (q1, q2)
        })
        .collect();
    for pick in [0usize, 1] {
        let corr = &corrections;
        denoms.clear();
        for (d, c) in dyns.iter().zip(corr.iter()) {
            let target = if pick == 0 { &c.0 } else { &c.1 };
            denoms.push(add_denom(&d.t, target));
        }
        Fp2::batch_invert(&mut denoms);
        for ((d, c), inv) in dyns.iter_mut().zip(corr.iter()).zip(denoms.iter()) {
            let target = if pick == 0 { c.0 } else { c.1 };
            let coeff = add_step(&mut d.t, &target, inv);
            f *= eval_line(&coeff, d.px, d.py);
        }
        for (px, py, prep) in preps.iter() {
            f *= eval_line(&prep.coeffs[cursor], *px, *py);
        }
        cursor += 1;
    }
    f
}

/// Product of Miller loops `∏ f_{6x+2, Qᵢ}(Pᵢ) · (frobenius line steps)`,
/// *without* the final exponentiation. Pairs with an identity element on
/// either side are skipped (contribute the neutral factor 1).
pub fn miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    miller_loop_mixed(pairs, &[])
}

/// The hard-part exponent `(p⁴ − p² + 1) / r`, derived once.
fn hard_part_exponent() -> &'static Vec<u64> {
    static CELL: OnceLock<Vec<u64>> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
        let r = BigUint::from_limbs(&<Fr as PrimeField>::MODULUS);
        let num = p.pow(4).sub(&p.pow(2)).add(&BigUint::one());
        let (q, rem) = num.div_rem(&r);
        assert!(rem.is_zero(), "BN identity: r | p⁴ − p² + 1");
        q.limbs().to_vec()
    })
}

/// Final exponentiation `f ↦ f^((p¹²−1)/r)`.
///
/// Returns `None` if `f` is zero (which a Miller loop never produces for
/// valid points).
pub fn final_exponentiation(f: &Fp12) -> Option<Fp12> {
    // Easy part: f^(p⁶−1) = conj(f)·f⁻¹, then ^(p²+1).
    let f_inv = f.inverse()?;
    let f1 = f.conjugate() * f_inv;
    let f2 = f1.frobenius_map(2) * f1;
    // Hard part: ^( (p⁴−p²+1)/r ).
    Some(f2.pow(hard_part_exponent()))
}

/// The full optimal ate pairing `e: G1 × G2 → μ_r ⊂ Fp12`.
///
/// # Examples
///
/// ```
/// use waku_curve::{g1::G1Affine, g2::G2Affine, pairing::pairing};
/// use waku_arith::traits::Field;
/// let e = pairing(&G1Affine::generator(), &G2Affine::generator());
/// assert!(!e.is_zero());
/// ```
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fp12 {
    final_exponentiation(&miller_loop(&[(*p, *q)])).expect("miller loop output is nonzero")
}

/// Product of pairings `∏ e(Pᵢ, Qᵢ)` sharing a single final exponentiation
/// (the shape Groth16 verification needs).
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    final_exponentiation(&miller_loop(pairs)).expect("miller loop output is nonzero")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use crate::g2::G2Projective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_is_nondegenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert_ne!(e, Fp12::one(), "e(G1, G2) must be a primitive r-th root");
        assert!(!e.is_zero());
        // It must have order dividing r.
        assert_eq!(e.pow(&<Fr as PrimeField>::MODULUS), Fp12::one());
    }

    #[test]
    fn pairing_with_identity_is_one() {
        assert_eq!(
            pairing(&G1Affine::identity(), &G2Affine::generator()),
            Fp12::one()
        );
        assert_eq!(
            pairing(&G1Affine::generator(), &G2Affine::identity()),
            Fp12::one()
        );
    }

    #[test]
    fn bilinearity() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::generator().mul(b).to_affine();
        let lhs = pairing(&p, &q);
        let base = pairing(&G1Affine::generator(), &G2Affine::generator());
        let ab = a * b;
        let rhs = base.pow(&ab.to_canonical_limbs());
        assert_eq!(lhs, rhs, "e(aG, bH) = e(G, H)^(ab)");
    }

    #[test]
    fn linearity_in_first_argument() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g = G1Projective::generator();
        let q = G2Affine::generator();
        let sum = g.mul(a).add(&g.mul(b)).to_affine();
        let lhs = pairing(&sum, &q);
        let rhs = pairing(&g.mul(a).to_affine(), &q) * pairing(&g.mul(b).to_affine(), &q);
        assert_eq!(lhs, rhs, "e(P1+P2, Q) = e(P1,Q)·e(P2,Q)");
    }

    #[test]
    fn inverse_point_inverts_pairing() {
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let e_neg = pairing(&p.neg(), &q);
        assert_eq!(e * e_neg, Fp12::one(), "e(-P, Q) = e(P, Q)^(-1)");
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = StdRng::seed_from_u64(9);
        let p1 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let p2 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q1 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q2 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let combined = multi_pairing(&[(p1, q1), (p2, q2)]);
        let separate = pairing(&p1, &q1) * pairing(&p2, &q2);
        assert_eq!(combined, separate);
    }

    #[test]
    fn untwisted_generator_is_on_e_fp12() {
        // The untwist (x', y') ↦ (x'·w², y'·w³) by coefficient placement.
        let g = G2Affine::generator();
        let x = Fp12::new(Fp6::new(Fp2::zero(), g.x, Fp2::zero()), Fp6::zero());
        let y = Fp12::new(Fp6::zero(), Fp6::new(Fp2::zero(), g.y, Fp2::zero()));
        let b = Fp12::from_base(Fq::from_u64(3));
        assert_eq!(
            y.square(),
            x.square() * x + b,
            "untwist must land on y² = x³ + 3 over Fp12"
        );
    }

    #[test]
    fn groth16_shape_identity() {
        // e(aP, bQ) · e(-abP, Q) = 1 — the cancellation pattern the
        // verifier relies on.
        let mut rng = StdRng::seed_from_u64(11);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let left = multi_pairing(&[
            (g1.mul(a).to_affine(), g2.mul(b).to_affine()),
            (g1.mul(a * b).neg().to_affine(), G2Affine::generator()),
        ]);
        assert_eq!(left, Fp12::one());
    }

    #[test]
    fn prepared_miller_loop_matches_dynamic() {
        let mut rng = StdRng::seed_from_u64(13);
        let p1 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let p2 = G1Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q1 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let q2 = G2Projective::generator()
            .mul(Fr::random(&mut rng))
            .to_affine();
        let dynamic = miller_loop(&[(p1, q1), (p2, q2)]);
        let q1p = G2Prepared::new(&q1);
        let q2p = G2Prepared::new(&q2);
        let replayed = miller_loop_mixed(&[], &[(p1, &q1p), (p2, &q2p)]);
        assert_eq!(dynamic, replayed, "prepared lines must replay exactly");
        let mixed = miller_loop_mixed(&[(p1, q1)], &[(p2, &q2p)]);
        assert_eq!(dynamic, mixed, "mixed dynamic/prepared must agree");
    }

    #[test]
    fn prepared_identity_and_identity_g1_are_skipped() {
        let prep_inf = G2Prepared::new(&G2Affine::identity());
        let p = G1Affine::generator();
        assert_eq!(miller_loop_mixed(&[], &[(p, &prep_inf)]), Fp12::one());
        let prep = G2Prepared::new(&G2Affine::generator());
        assert_eq!(
            miller_loop_mixed(&[], &[(G1Affine::identity(), &prep)]),
            Fp12::one()
        );
    }

    #[test]
    fn batched_dynamic_pairs_match_separate_loops() {
        // Four dynamic pairs in one lock-step loop (one batch inversion per
        // phase) must equal the product of four separate loops.
        let mut rng = StdRng::seed_from_u64(17);
        let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                (
                    G1Projective::generator()
                        .mul(Fr::random(&mut rng))
                        .to_affine(),
                    G2Projective::generator()
                        .mul(Fr::random(&mut rng))
                        .to_affine(),
                )
            })
            .collect();
        let batched = miller_loop(&pairs);
        let mut separate = Fp12::one();
        for pair in &pairs {
            separate *= miller_loop(std::slice::from_ref(pair));
        }
        assert_eq!(batched, separate);
    }
}
