//! Cubic extension `Fp6 = Fp2[v]/(v³ − ξ)` with `ξ = 9 + u`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::Fq;
use waku_arith::traits::{Field, PrimeField};

use crate::fp2::Fp2;

/// An element `c0 + c1·v + c2·v²` of Fp6.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fp6 {
    /// Constant coefficient.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v²`.
    pub c2: Fp2,
}

/// Frobenius constants `γ1ᵢ = ξ^((pⁱ−1)/3)` and `γ2ᵢ = γ1ᵢ²` for i = 0..=3,
/// derived at first use from the modulus (no magic tables).
fn frobenius_coeffs() -> &'static [(Fp2, Fp2); 4] {
    static CELL: OnceLock<[(Fp2, Fp2); 4]> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
        let three = BigUint::from(3u64);
        let mut out = [(Fp2::one(), Fp2::one()); 4];
        for (i, slot) in out.iter_mut().enumerate() {
            let p_i = p.pow(i as u32);
            let (e1, r) = p_i.sub(&BigUint::one()).div_rem(&three);
            assert!(r.is_zero(), "p^i - 1 must be divisible by 3");
            let g1 = Fp2::xi().pow(e1.limbs());
            *slot = (g1, g1.square());
        }
        out
    })
}

impl Fp6 {
    /// Builds an element from its Fp2 coefficients.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Fp6 { c0, c1, c2 }
    }

    /// Embeds an Fp2 element.
    pub fn from_fp2(c0: Fp2) -> Self {
        Fp6 {
            c0,
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    /// Multiplication by `v`: `(c0 + c1·v + c2·v²)·v = c2·ξ + c0·v + c1·v²`.
    pub fn mul_by_v(&self) -> Self {
        Fp6 {
            c0: self.c2.mul_by_nonresidue(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Frobenius endomorphism `x ↦ x^(p^power)` for `power ≤ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `power > 3`.
    pub fn frobenius_map(&self, power: usize) -> Self {
        assert!(power <= 3, "frobenius power out of precomputed range");
        let (g1, g2) = frobenius_coeffs()[power];
        Fp6 {
            c0: self.c0.frobenius_map(power),
            c1: self.c1.frobenius_map(power) * g1,
            c2: self.c2.frobenius_map(power) * g2,
        }
    }

    /// Multiplies every coefficient by an Fp2 scalar.
    pub fn scale(&self, s: Fp2) -> Self {
        Fp6 {
            c0: self.c0 * s,
            c1: self.c1 * s,
            c2: self.c2 * s,
        }
    }
}

impl Add for Fp6 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp6 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
            c2: self.c2 + rhs.c2,
        }
    }
}

impl Sub for Fp6 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp6 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
            c2: self.c2 - rhs.c2,
        }
    }
}

impl Mul for Fp6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom-like interpolation (standard Fp6 Karatsuba).
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let v2 = self.c2 * rhs.c2;
        let c0 = ((self.c1 + self.c2) * (rhs.c1 + rhs.c2) - v1 - v2).mul_by_nonresidue() + v0;
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1 + v2.mul_by_nonresidue();
        let c2 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - v0 - v2 + v1;
        Fp6 { c0, c1, c2 }
    }
}

impl Neg for Fp6 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp6 {
            c0: -self.c0,
            c1: -self.c1,
            c2: -self.c2,
        }
    }
}

impl AddAssign for Fp6 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp6 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp6 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

impl fmt::Display for Fp6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) + ({})·v + ({})·v²", self.c0, self.c1, self.c2)
    }
}

impl Field for Fp6 {
    fn zero() -> Self {
        Fp6 {
            c0: Fp2::zero(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    fn one() -> Self {
        Fp6 {
            c0: Fp2::one(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn square(&self) -> Self {
        // CH-SQR2 squaring.
        let s0 = self.c0.square();
        let ab = self.c0 * self.c1;
        let s1 = ab.double();
        let s2 = (self.c0 - self.c1 + self.c2).square();
        let bc = self.c1 * self.c2;
        let s3 = bc.double();
        let s4 = self.c2.square();
        Fp6 {
            c0: s0 + s3.mul_by_nonresidue(),
            c1: s1 + s4.mul_by_nonresidue(),
            c2: s1 + s2 + s3 - s0 - s4,
        }
    }

    fn inverse(&self) -> Option<Self> {
        // Standard cubic-extension inversion via the adjugate.
        let a = self.c0.square() - (self.c1 * self.c2).mul_by_nonresidue();
        let b = self.c2.square().mul_by_nonresidue() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let t = (self.c2 * b + self.c1 * c).mul_by_nonresidue() + self.c0 * a;
        let t_inv = t.inverse()?;
        Some(Fp6 {
            c0: a * t_inv,
            c1: b * t_inv,
            c2: c * t_inv,
        })
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Fp6 {
            c0: Fp2::random(rng),
            c1: Fp2::random(rng),
            c2: Fp2::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        let v3 = v * v * v;
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn mul_by_v_matches_mul() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Fp6::random(&mut rng);
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(a.mul_by_v(), a * v);
    }

    #[test]
    fn square_matches_mul() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let a = Fp6::random(&mut rng);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let a = Fp6::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fp6::one());
        }
        assert!(Fp6::zero().inverse().is_none());
    }

    #[test]
    fn associativity() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Fp6::random(&mut rng);
        let b = Fp6::random(&mut rng);
        let c = Fp6::random(&mut rng);
        assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn frobenius_is_pth_power() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Fp6::random(&mut rng);
        assert_eq!(
            a.frobenius_map(1),
            a.pow(&<Fq as PrimeField>::MODULUS),
            "frobenius(1) must equal x^p"
        );
        assert_eq!(a.frobenius_map(0), a);
        assert_eq!(a.frobenius_map(1).frobenius_map(1), a.frobenius_map(2));
        assert_eq!(a.frobenius_map(2).frobenius_map(1), a.frobenius_map(3));
    }
}
