//! # waku-curve
//!
//! BN254 elliptic-curve substrate: the G1/G2 groups, the Fp2→Fp6→Fp12
//! extension tower, Pippenger multi-scalar multiplication, and the optimal
//! ate pairing. Together with [`waku_arith`] this is everything
//! `waku-snark`'s Groth16 implementation needs — all built from scratch for
//! the WAKU-RLN-RELAY reproduction (the paper's proof system, §II-B).
//!
//! ## Example
//!
//! ```
//! use waku_curve::{g1::G1Projective, g2::G2Projective, pairing::pairing};
//! use waku_arith::{fields::Fr, traits::Field};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = Fr::random(&mut rng);
//! // Bilinearity: e(aG, H) = e(G, aH).
//! let lhs = pairing(&G1Projective::generator().mul(a).to_affine(),
//!                   &G2Projective::generator().to_affine());
//! let rhs = pairing(&G1Projective::generator().to_affine(),
//!                   &G2Projective::generator().mul(a).to_affine());
//! assert_eq!(lhs, rhs);
//! ```

pub mod endo;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod g1;
pub mod g2;
pub mod msm;
pub mod pairing;
pub mod point;

pub use endo::{g2_msm, g2_mul_gls, psi};
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use g1::{G1Affine, G1Projective};
pub use g2::{G2Affine, G2Projective};
pub use msm::{msm, naive_msm, WindowTable};
pub use pairing::{final_exponentiation, miller_loop, multi_pairing, pairing, G2Prepared};
