//! The BN254 G1 group: `y² = x³ + 3` over Fq, generator `(1, 2)`.

use waku_arith::fields::Fq;
use waku_arith::traits::PrimeField;

use crate::point::{Affine, CurveParams, Projective};

/// Curve parameters for G1.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fq;
    const NAME: &'static str = "G1";

    fn b() -> Fq {
        Fq::from_u64(3)
    }

    fn generator() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
}

/// A G1 point in affine coordinates.
pub type G1Affine = Affine<G1Params>;
/// A G1 point in Jacobian coordinates.
pub type G1Projective = Projective<G1Params>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waku_arith::fields::Fr;
    use waku_arith::traits::Field;

    #[test]
    fn generator_on_curve_and_in_subgroup() {
        let g = G1Affine::generator();
        assert!(g.is_on_curve());
        assert!(g.is_in_subgroup(), "BN254 G1 has prime order r");
    }

    #[test]
    fn group_laws() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = G1Projective::generator();
        let a = g.mul(Fr::random(&mut rng));
        let b = g.mul(Fr::random(&mut rng));
        let c = g.mul(Fr::random(&mut rng));
        assert_eq!(a.add(&b), b.add(&a), "commutativity");
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)), "associativity");
        assert_eq!(a.add(&a), a.double(), "doubling consistency");
        assert!(a.add(&a.neg()).is_identity(), "inverse");
        assert_eq!(a.add(&G1Projective::identity()), a, "identity");
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = G1Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g.mul(a).add(&g.mul(b)), g.mul(a + b));
        assert_eq!(g.mul(a).mul(b), g.mul(a * b));
    }

    #[test]
    fn mixed_addition_matches_general() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = G1Projective::generator();
        let a = g.mul(Fr::random(&mut rng));
        let b = g.mul(Fr::random(&mut rng));
        let b_affine = b.to_affine();
        assert_eq!(a.add_mixed(&b_affine), a.add(&b));
        // degenerate cases
        assert_eq!(a.add_mixed(&a.to_affine()), a.double());
        assert!(a.add_mixed(&a.neg().to_affine()).is_identity());
        assert_eq!(a.add_mixed(&G1Affine::identity()), a);
    }

    #[test]
    fn affine_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = G1Projective::generator().mul(Fr::random(&mut rng));
        assert_eq!(p.to_affine().to_projective(), p);
        assert!(G1Projective::identity().to_affine().is_identity());
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = G1Projective::generator();
        let mut points: Vec<G1Projective> = (0..10).map(|_| g.mul(Fr::random(&mut rng))).collect();
        points.insert(3, G1Projective::identity());
        let batch = G1Projective::batch_to_affine(&points);
        for (p, a) in points.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *a);
        }
    }

    #[test]
    fn order_annihilates() {
        let g = G1Projective::generator();
        let r = <Fr as PrimeField>::MODULUS;
        assert!(g.mul_limbs(&r).is_identity());
    }

    #[test]
    fn point_validation() {
        assert!(G1Affine::new(Fq::from_u64(1), Fq::from_u64(2)).is_some());
        assert!(G1Affine::new(Fq::from_u64(1), Fq::from_u64(3)).is_none());
    }
}
