//! Quadratic extension `Fp12 = Fp6[w]/(w² − v)` — the pairing target field.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::Fq;
use waku_arith::traits::{Field, PrimeField};

use crate::fp2::Fp2;
use crate::fp6::Fp6;

/// An element `c0 + c1·w` of Fp12.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fp12 {
    /// Constant coefficient.
    pub c0: Fp6,
    /// Coefficient of `w`.
    pub c1: Fp6,
}

/// Frobenius constants `γᵢ = ξ^((pⁱ−1)/6)` for i = 0..=3, derived at first
/// use.
fn frobenius_coeffs() -> &'static [Fp2; 4] {
    static CELL: OnceLock<[Fp2; 4]> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
        let six = BigUint::from(6u64);
        let mut out = [Fp2::one(); 4];
        for (i, slot) in out.iter_mut().enumerate() {
            let p_i = p.pow(i as u32);
            let (e, r) = p_i.sub(&BigUint::one()).div_rem(&six);
            assert!(r.is_zero(), "p^i - 1 must be divisible by 6");
            *slot = Fp2::xi().pow(e.limbs());
        }
        out
    })
}

impl Fp12 {
    /// Builds an element from its Fp6 coefficients.
    pub const fn new(c0: Fp6, c1: Fp6) -> Self {
        Fp12 { c0, c1 }
    }

    /// Embeds an Fp6 element.
    pub fn from_fp6(c0: Fp6) -> Self {
        Fp12 {
            c0,
            c1: Fp6::zero(),
        }
    }

    /// Embeds an Fq element.
    pub fn from_base(c: Fq) -> Self {
        Fp12::from_fp6(Fp6::from_fp2(Fp2::from_base(c)))
    }

    /// Conjugation `c0 − c1·w`; equals the `p⁶`-power Frobenius, and for
    /// elements in the cyclotomic subgroup equals inversion.
    pub fn conjugate(&self) -> Self {
        Fp12 {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Frobenius endomorphism `x ↦ x^(p^power)` for `power ≤ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `power > 3`.
    pub fn frobenius_map(&self, power: usize) -> Self {
        assert!(power <= 3, "frobenius power out of precomputed range");
        let g = frobenius_coeffs()[power];
        Fp12 {
            c0: self.c0.frobenius_map(power),
            c1: self.c1.frobenius_map(power).scale(g),
        }
    }
}

impl Add for Fp12 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp12 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fp12 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp12 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Mul for Fp12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba with w² = v.
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let s = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Fp12 {
            c0: v0 + v1.mul_by_v(),
            c1: s - v0 - v1,
        }
    }
}

impl Neg for Fp12 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp12 {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl AddAssign for Fp12 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp12 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp12({:?} + ({:?})·w)", self.c0, self.c1)
    }
}

impl fmt::Display for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) + ({})·w", self.c0, self.c1)
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Fp12 {
            c0: Fp6::zero(),
            c1: Fp6::zero(),
        }
    }

    fn one() -> Self {
        Fp12 {
            c0: Fp6::one(),
            c1: Fp6::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // Complex squaring: (c0 + c1 w)² = (c0² + c1²·v) + 2c0c1·w.
        let ab = self.c0 * self.c1;
        let a = self.c0 + self.c1;
        let b = self.c0 + self.c1.mul_by_v();
        let t = a * b - ab - ab.mul_by_v();
        Fp12 {
            c0: t,
            c1: ab.double(),
        }
    }

    fn inverse(&self) -> Option<Self> {
        // 1/(c0 + c1 w) = (c0 − c1 w)/(c0² − c1²·v)
        let t = self.c0.square() - self.c1.square().mul_by_v();
        let t_inv = t.inverse()?;
        Some(Fp12 {
            c0: self.c0 * t_inv,
            c1: -(self.c1 * t_inv),
        })
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Fp12 {
            c0: Fp6::random(rng),
            c1: Fp6::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::zero(), Fp6::one());
        let v = Fp12::from_fp6(Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero()));
        assert_eq!(w.square(), v);
        assert_eq!(w * w, v);
    }

    #[test]
    fn square_matches_mul() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let a = Fp12::random(&mut rng);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let a = Fp12::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fp12::one());
        }
    }

    #[test]
    fn associativity_distributivity() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Fp12::random(&mut rng);
        let b = Fp12::random(&mut rng);
        let c = Fp12::random(&mut rng);
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn frobenius_is_pth_power() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Fp12::random(&mut rng);
        assert_eq!(a.frobenius_map(1), a.pow(&<Fq as PrimeField>::MODULUS));
        assert_eq!(a.frobenius_map(1).frobenius_map(1), a.frobenius_map(2));
        assert_eq!(a.frobenius_map(2).frobenius_map(1), a.frobenius_map(3));
    }

    #[test]
    fn conjugate_is_p6_frobenius() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Fp12::random(&mut rng);
        let f3 = a.frobenius_map(3);
        // p⁶ = (p³)²; conjugation flips the sign of c1.
        assert_eq!(f3.frobenius_map(3), a.conjugate());
    }
}
