//! Quadratic extension `Fp2 = Fq[u]/(u² + 1)`.
//!
//! BN254's base field has `q ≡ 3 (mod 4)`, so `−1` is a non-residue and the
//! tower starts with `u² = −1`. The sextic twist uses the non-residue
//! `ξ = 9 + u` (exposed as [`Fp2::mul_by_nonresidue`]).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use waku_arith::fields::Fq;
use waku_arith::traits::Field;

/// An element `c0 + c1·u` of Fp2.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fp2 {
    /// Constant coefficient.
    pub c0: Fq,
    /// Coefficient of `u`.
    pub c1: Fq,
}

impl Fp2 {
    /// Builds an element from its two Fq coefficients.
    pub const fn new(c0: Fq, c1: Fq) -> Self {
        Fp2 { c0, c1 }
    }

    /// Embeds an Fq element.
    pub fn from_base(c0: Fq) -> Self {
        Fp2 { c0, c1: Fq::zero() }
    }

    /// The twist non-residue `ξ = 9 + u`.
    pub fn xi() -> Self {
        use waku_arith::traits::PrimeField;
        Fp2 {
            c0: Fq::from_u64(9),
            c1: Fq::one(),
        }
    }

    /// Complex conjugation `c0 − c1·u`; equals the `p`-power Frobenius.
    pub fn conjugate(&self) -> Self {
        Fp2 {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Frobenius endomorphism `x ↦ x^(p^power)`.
    pub fn frobenius_map(&self, power: usize) -> Self {
        if power.is_multiple_of(2) {
            *self
        } else {
            self.conjugate()
        }
    }

    /// Multiplies by the cubic/sextic tower non-residue `ξ = 9 + u`:
    /// `(9·c0 − c1) + (9·c1 + c0)·u`.
    pub fn mul_by_nonresidue(&self) -> Self {
        let t = self.double().double().double() + *self; // 9·self
        Fp2 {
            c0: t.c0 - self.c1,
            c1: t.c1 + self.c0,
        }
    }

    /// Norm `c0² + c1²` (an Fq element).
    pub fn norm(&self) -> Fq {
        self.c0.square() + self.c1.square()
    }

    /// Multiplies both coefficients by an Fq scalar.
    pub fn scale(&self, s: Fq) -> Self {
        Fp2 {
            c0: self.c0 * s,
            c1: self.c1 * s,
        }
    }
}

impl Add for Fp2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp2 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fp2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp2 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Mul for Fp2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba: (a0 + a1 u)(b0 + b1 u) with u² = −1.
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let s = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Fp2 {
            c0: v0 - v1,
            c1: s - v0 - v1,
        }
    }
}

impl Neg for Fp2 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp2 {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl AddAssign for Fp2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({} + {}·u)", self.c0, self.c1)
    }
}

impl fmt::Display for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}·u", self.c0, self.c1)
    }
}

impl crate::point::BatchInvert for Fp2 {
    /// `d⁻¹ = d̄ / N(d)` with the norm in Fq: one Fq batch inversion plus
    /// four Fq multiplications per element, instead of nine for the
    /// generic Montgomery chain over Fp2 products.
    fn batch_invert(values: &mut [Self]) {
        let mut norms: Vec<Fq> = values.iter().map(|v| v.norm()).collect();
        waku_arith::batch_inv::batch_inverse_in_place(&mut norms);
        for (v, n_inv) in values.iter_mut().zip(norms) {
            // A zero norm means v = 0 (c0² + c1² = 0 has no nonzero curve
            // coordinate solutions here since −1 is a quadratic
            // nonresidue of Fq), so the zero n_inv keeps v at zero.
            *v = v.conjugate().scale(n_inv);
        }
    }
}

impl Field for Fp2 {
    fn zero() -> Self {
        Fp2 {
            c0: Fq::zero(),
            c1: Fq::zero(),
        }
    }

    fn one() -> Self {
        Fp2 {
            c0: Fq::one(),
            c1: Fq::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (a0 + a1 u)² = (a0−a1)(a0+a1) + 2·a0·a1·u
        let a = self.c0 - self.c1;
        let b = self.c0 + self.c1;
        let c = self.c0 * self.c1;
        Fp2 {
            c0: a * b,
            c1: c.double(),
        }
    }

    fn inverse(&self) -> Option<Self> {
        // 1/(a0 + a1 u) = (a0 − a1 u)/(a0² + a1²)
        let norm_inv = self.norm().inverse()?;
        Some(Fp2 {
            c0: self.c0 * norm_inv,
            c1: -(self.c1 * norm_inv),
        })
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Fp2 {
            c0: Fq::random(rng),
            c1: Fq::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fq::zero(), Fq::one());
        assert_eq!(u.square(), -Fp2::one());
    }

    #[test]
    fn mul_matches_square() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let a = Fp2::random(&mut rng);
            assert_eq!(a * a, a.square());
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = Fp2::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fp2::one());
        }
        assert!(Fp2::zero().inverse().is_none());
    }

    #[test]
    fn distributivity() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Fp2::random(&mut rng);
        let b = Fp2::random(&mut rng);
        let c = Fp2::random(&mut rng);
        assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn mul_by_nonresidue_matches_mul_by_xi() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let a = Fp2::random(&mut rng);
            assert_eq!(a.mul_by_nonresidue(), a * Fp2::xi());
        }
    }

    #[test]
    fn frobenius_is_pth_power() {
        use waku_arith::traits::PrimeField;
        let mut rng = StdRng::seed_from_u64(5);
        let a = Fp2::random(&mut rng);
        let frob = a.frobenius_map(1);
        let pth = a.pow(&<Fq as PrimeField>::MODULUS);
        assert_eq!(frob, pth);
        assert_eq!(a.frobenius_map(2), a);
    }

    #[test]
    fn conjugate_norm() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Fp2::random(&mut rng);
        let n = a * a.conjugate();
        assert_eq!(n.c0, a.norm());
        assert!(n.c1.is_zero());
    }
}
