//! The BN254 G2 group: `y² = x³ + 3/ξ` over Fp2 (the sextic D-twist).
//!
//! The generator coordinates are the standard values used by every BN254
//! implementation (EIP-197, arkworks, zerokit); they are stored as decimal
//! strings and parsed through the big-integer path so they remain
//! cross-checkable against public sources.

use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::Fq;
use waku_arith::traits::{Field, PrimeField};

use crate::fp2::Fp2;
use crate::point::{Affine, CurveParams, Projective};

const G2_X_C0: &str =
    "10857046999023057135944570762232829481370756359578518086990519993285655852781";
const G2_X_C1: &str =
    "11559732032986387107991004021392285783925812861821192530917403151452391805634";
const G2_Y_C0: &str =
    "8495653923123431417604973247489272438418190587263600148770280649306958101930";
const G2_Y_C1: &str =
    "4082367875863433681332203403145435568316851327593401208105741076214120093531";

fn fq_from_decimal(s: &str) -> Fq {
    let big = BigUint::from_decimal(s).expect("valid decimal");
    let limbs = big.to_fixed_limbs(4);
    Fq::from_canonical_limbs([limbs[0], limbs[1], limbs[2], limbs[3]])
        .expect("coordinate below modulus")
}

fn g2_generator() -> &'static (Fp2, Fp2) {
    static CELL: OnceLock<(Fp2, Fp2)> = OnceLock::new();
    CELL.get_or_init(|| {
        let x = Fp2::new(fq_from_decimal(G2_X_C0), fq_from_decimal(G2_X_C1));
        let y = Fp2::new(fq_from_decimal(G2_Y_C0), fq_from_decimal(G2_Y_C1));
        (x, y)
    })
}

fn g2_b() -> &'static Fp2 {
    static CELL: OnceLock<Fp2> = OnceLock::new();
    CELL.get_or_init(|| {
        // b' = 3/ξ (D-type twist).
        Fp2::from_base(Fq::from_u64(3)) * Fp2::xi().inverse().expect("ξ nonzero")
    })
}

/// Curve parameters for G2.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fp2;
    const NAME: &'static str = "G2";

    fn b() -> Fp2 {
        *g2_b()
    }

    fn generator() -> (Fp2, Fp2) {
        *g2_generator()
    }
}

/// A G2 point in affine coordinates.
pub type G2Affine = Affine<G2Params>;
/// A G2 point in Jacobian coordinates.
pub type G2Projective = Projective<G2Params>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waku_arith::fields::Fr;
    use waku_arith::traits::Field;

    #[test]
    fn generator_on_curve_and_in_subgroup() {
        let g = G2Affine::generator();
        assert!(
            g.is_on_curve(),
            "published G2 generator satisfies y² = x³ + 3/ξ"
        );
        assert!(g.is_in_subgroup(), "generator lies in the order-r subgroup");
    }

    #[test]
    fn group_laws() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = G2Projective::generator();
        let a = g.mul(Fr::random(&mut rng));
        let b = g.mul(Fr::random(&mut rng));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&a), a.double());
        assert!(a.add(&a.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = G2Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g.mul(a).add(&g.mul(b)), g.mul(a + b));
    }

    #[test]
    fn order_annihilates() {
        let g = G2Projective::generator();
        assert!(g.mul_limbs(&<Fr as PrimeField>::MODULUS).is_identity());
    }

    #[test]
    fn affine_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = G2Projective::generator().mul(Fr::random(&mut rng));
        assert_eq!(p.to_affine().to_projective(), p);
    }
}
