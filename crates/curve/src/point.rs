//! Short-Weierstrass group arithmetic (`y² = x³ + b`, `a = 0`), generic over
//! the base field so G1 (over Fq) and G2 (over Fp2) share one implementation.
//!
//! Affine points are the serialization/storage form; Jacobian projective
//! coordinates are used for arithmetic.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

use waku_arith::fields::Fr;
use waku_arith::traits::{Field, PrimeField};

/// Batch inversion strategy for a coordinate field, used by the
/// batch-affine MSM buckets. The default is Montgomery's trick directly in
/// the field; extension fields can override it to push the inversions down
/// to the base field (see the `Fp2` impl).
pub trait BatchInvert: Field {
    /// Inverts every element of `values` in place; zeros stay zero.
    fn batch_invert(values: &mut [Self])
    where
        Self: Sized,
    {
        waku_arith::batch_inv::batch_inverse_in_place(values);
    }
}

impl BatchInvert for waku_arith::fields::Fq {}

/// Static description of one curve (coefficient `b` and a generator of the
/// prime-order subgroup).
pub trait CurveParams:
    Copy + Clone + Eq + PartialEq + Hash + fmt::Debug + Default + Send + Sync + 'static
{
    /// Field the coordinates live in.
    type Base: BatchInvert;
    /// Short name used in `Debug` output.
    const NAME: &'static str;
    /// The constant `b` of `y² = x³ + b`.
    fn b() -> Self::Base;
    /// Affine coordinates of the subgroup generator.
    fn generator() -> (Self::Base, Self::Base);
}

/// A point in affine coordinates (or the point at infinity).
pub struct Affine<C: CurveParams> {
    /// x-coordinate (undefined when `infinity`).
    pub x: C::Base,
    /// y-coordinate (undefined when `infinity`).
    pub y: C::Base,
    /// Marker for the point at infinity.
    pub infinity: bool,
    _marker: PhantomData<C>,
}

/// A point in Jacobian projective coordinates (`x = X/Z²`, `y = Y/Z³`).
pub struct Projective<C: CurveParams> {
    x: C::Base,
    y: C::Base,
    z: C::Base,
    _marker: PhantomData<C>,
}

impl<C: CurveParams> Copy for Affine<C> {}
impl<C: CurveParams> Clone for Affine<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C: CurveParams> Copy for Projective<C> {}
impl<C: CurveParams> Clone for Projective<C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C: CurveParams> PartialEq for Affine<C> {
    fn eq(&self, other: &Self) -> bool {
        if self.infinity || other.infinity {
            return self.infinity == other.infinity;
        }
        self.x == other.x && self.y == other.y
    }
}
impl<C: CurveParams> Eq for Affine<C> {}

impl<C: CurveParams> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}(infinity)", C::NAME)
        } else {
            write!(f, "{}({}, {})", C::NAME, self.x, self.y)
        }
    }
}

impl<C: CurveParams> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Affine {
            x: C::Base::zero(),
            y: C::Base::one(),
            infinity: true,
            _marker: PhantomData,
        }
    }

    /// Builds a point from coordinates, verifying the curve equation.
    pub fn new(x: C::Base, y: C::Base) -> Option<Self> {
        let p = Affine {
            x,
            y,
            infinity: false,
            _marker: PhantomData,
        };
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }

    /// Builds a point without checking the curve equation.
    ///
    /// The caller must guarantee `(x, y)` satisfies `y² = x³ + b`.
    pub fn new_unchecked(x: C::Base, y: C::Base) -> Self {
        Affine {
            x,
            y,
            infinity: false,
            _marker: PhantomData,
        }
    }

    /// The configured subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator();
        Affine {
            x,
            y,
            infinity: false,
            _marker: PhantomData,
        }
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks `y² = x³ + b` (vacuously true at infinity).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + C::b()
    }

    /// Checks that the point lies in the prime-order-`r` subgroup.
    pub fn is_in_subgroup(&self) -> bool {
        self.to_projective()
            .mul_limbs(&<Fr as PrimeField>::MODULUS)
            .is_identity()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::Base::one(),
                _marker: PhantomData,
            }
        }
    }

    /// Scalar multiplication by a field element of the scalar field.
    pub fn mul(&self, scalar: Fr) -> Projective<C> {
        self.to_projective().mul(scalar)
    }

    /// Negation (reflection over the x-axis).
    pub fn neg(&self) -> Self {
        Affine {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
            _marker: PhantomData,
        }
    }
}

impl<C: CurveParams> Projective<C> {
    /// The point at infinity (Z = 0).
    pub fn identity() -> Self {
        Projective {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
            _marker: PhantomData,
        }
    }

    /// The configured subgroup generator.
    pub fn generator() -> Self {
        Affine::<C>::generator().to_projective()
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`a = 0` Jacobian formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// General Jacobian addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Mixed addition with an affine point (Z2 = 1), the hot path in MSM.
    pub fn add_mixed(&self, other: &Affine<C>) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Projective {
            x: self.x,
            y: -self.y,
            z: self.z,
            _marker: PhantomData,
        }
    }

    /// Double-and-add scalar multiplication with a little-endian limb
    /// exponent.
    pub fn mul_limbs(&self, exp: &[u64]) -> Self {
        let mut acc = Self::identity();
        for &limb in exp.iter().rev() {
            for bit in (0..64).rev() {
                acc = acc.double();
                if (limb >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Scalar multiplication by an `Fr` element.
    pub fn mul(&self, scalar: Fr) -> Self {
        self.mul_limbs(&scalar.to_canonical_limbs())
    }

    /// Converts back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let z_inv = self.z.inverse().expect("nonzero z");
        let z_inv2 = z_inv.square();
        Affine {
            x: self.x * z_inv2,
            y: self.y * z_inv2 * z_inv,
            infinity: false,
            _marker: PhantomData,
        }
    }

    /// Batch conversion to affine with a single inversion (Montgomery trick).
    pub fn batch_to_affine(points: &[Self]) -> Vec<Affine<C>> {
        let mut prods = Vec::with_capacity(points.len());
        let mut acc = C::Base::one();
        for p in points {
            prods.push(acc);
            if !p.is_identity() {
                acc *= p.z;
            }
        }
        let mut inv = acc.inverse().expect("product of nonzero z values");
        let mut out = vec![Affine::identity(); points.len()];
        for (i, p) in points.iter().enumerate().rev() {
            if p.is_identity() {
                continue;
            }
            let z_inv = prods[i] * inv;
            inv *= p.z;
            let z_inv2 = z_inv.square();
            out[i] = Affine {
                x: p.x * z_inv2,
                y: p.y * z_inv2 * z_inv,
                infinity: false,
                _marker: PhantomData,
            };
        }
        out
    }
}

impl<C: CurveParams> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        if self.is_identity() || other.is_identity() {
            return self.is_identity() == other.is_identity();
        }
        // (X1/Z1², Y1/Z1³) == (X2/Z2², Y2/Z2³) without inversions.
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1 && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}
impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> fmt::Debug for Projective<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.to_affine();
        write!(f, "{:?}", a)
    }
}

impl<C: CurveParams> std::ops::Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}

impl<C: CurveParams> std::ops::Sub for Projective<C> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs.neg())
    }
}

impl<C: CurveParams> std::ops::Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}

impl<C: CurveParams> std::iter::Sum for Projective<C> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::identity(), |a, b| a.add(&b))
    }
}
