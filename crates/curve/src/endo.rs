//! The GLS endomorphism on G2 and the scalar decomposition it induces.
//!
//! BN curves carry an efficiently computable endomorphism on the twist:
//! `ψ = twist ∘ π_p ∘ untwist` (untwist to `E(Fp12)`, apply the `p`-power
//! Frobenius, map back). In twist coordinates it is just a conjugation and
//! two fixed Fp2 multiplications,
//!
//! ```text
//! ψ(x, y) = (c_x · x̄,  c_y · ȳ),   c_x = ξ^((p−1)/3),  c_y = ξ^((p−1)/2),
//! ```
//!
//! and on the order-`r` subgroup it acts as multiplication by the scalar
//! `λ = 6x² = t − 1 ≡ p (mod r)` — only ~127 bits for BN254. Splitting a
//! 254-bit scalar as `k = k₀ + k₁·λ` (integer division, both halves
//! ≤ 128 bits) turns one full-width G2 operation into two half-width ones
//! sharing their doubling chain:
//!
//! * [`g2_mul_gls`] — half-length double-and-add for a single point;
//! * [`g2_msm`] — a pooled Pippenger MSM over the expanded
//!   `(Pᵢ, k₀ᵢ), (ψPᵢ, k₁ᵢ)` lists, with the window count halved via the
//!   128-bit cap (`msm_limbs(_, 132)`).
//!
//! Measured on this workload the split does **not** pay for itself inside
//! the Groth16 prover: the `B` query MSM is dominated by bucket additions
//! (doubling-chain savings don't help Pippenger much, and the ψ expansion
//! doubles the point list), so the prover keeps the generic G2 MSM. The
//! routines stay exported for callers whose G2 products are
//! double-and-add bound, where the half-width chain is a real win.
//!
//! The same `ψ` implements the two Frobenius correction steps of the
//! optimal ate Miller loop (see [`mod@crate::pairing`]), so its constants are
//! cross-checked by the pairing tests as well as the eigenvalue test here.
//!
//! Correctness requires the inputs to lie in the order-`r` subgroup (where
//! `ψ` acts as `[λ]`); all G2 inputs in this codebase are produced by
//! scalar multiples of the generator, which satisfies that by construction.

use std::sync::OnceLock;

use waku_arith::biguint::BigUint;
use waku_arith::fields::{Fq, Fr};
use waku_arith::traits::{Field, PrimeField};

use crate::fp2::Fp2;
use crate::g2::{G2Affine, G2Projective};
use crate::msm::msm_limbs;
use crate::pairing::BN_X;

/// The ψ coordinate constants `(c_x, c_y) = (ξ^((p−1)/3), ξ^((p−1)/2))`,
/// derived once from the tower's non-residue rather than transcribed.
fn psi_coeffs() -> &'static (Fp2, Fp2) {
    static CELL: OnceLock<(Fp2, Fp2)> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
        let p_minus_1 = p.sub(&BigUint::one());
        let (e_x, rem3) = p_minus_1.div_rem(&BigUint::from(3u64));
        let (e_y, rem2) = p_minus_1.div_rem(&BigUint::from(2u64));
        assert!(rem3.is_zero() && rem2.is_zero(), "p ≡ 1 (mod 6) on BN254");
        let xi = Fp2::xi();
        (xi.pow(e_x.limbs()), xi.pow(e_y.limbs()))
    })
}

/// Applies the endomorphism `ψ(x, y) = (c_x·x̄, c_y·ȳ)`.
pub fn psi(p: &G2Affine) -> G2Affine {
    if p.is_identity() {
        return G2Affine::identity();
    }
    let (cx, cy) = psi_coeffs();
    G2Affine::new_unchecked(*cx * p.x.conjugate(), *cy * p.y.conjugate())
}

/// The eigenvalue `λ = 6x²` of ψ on the order-`r` subgroup, as an integer
/// (fits in 128 bits for BN254).
pub fn gls_lambda_u128() -> u128 {
    6 * (BN_X as u128) * (BN_X as u128)
}

fn lambda_biguint() -> &'static BigUint {
    static CELL: OnceLock<BigUint> = OnceLock::new();
    CELL.get_or_init(|| {
        let l = gls_lambda_u128();
        BigUint::from_limbs(&[l as u64, (l >> 64) as u64])
    })
}

/// The eigenvalue `λ` as a scalar-field element.
pub fn gls_lambda_fr() -> Fr {
    let l = gls_lambda_u128();
    let mut limbs = [0u64; 4];
    limbs[0] = l as u64;
    limbs[1] = (l >> 64) as u64;
    Fr::from_canonical_limbs(limbs).expect("λ < r")
}

/// Splits a canonical scalar as `k = k₀ + k₁·λ` over the integers
/// (`k₀ < λ`, `k₁ = ⌊k/λ⌋ < 2¹²⁷`); both halves are returned as 4-limb
/// values with the top two limbs zero, ready for half-width recoding.
pub fn gls_decompose(k: &Fr) -> ([u64; 4], [u64; 4]) {
    let k_big = BigUint::from_limbs(&k.to_canonical_limbs());
    let (k1, k0) = k_big.div_rem(lambda_biguint());
    let mut l0 = [0u64; 4];
    let mut l1 = [0u64; 4];
    for (dst, src) in l0.iter_mut().zip(k0.to_fixed_limbs(4)) {
        *dst = src;
    }
    for (dst, src) in l1.iter_mut().zip(k1.to_fixed_limbs(4)) {
        *dst = src;
    }
    debug_assert_eq!((l0[2], l0[3], l1[2], l1[3]), (0, 0, 0, 0));
    (l0, l1)
}

/// `k·P` for a subgroup point via the GLS split: a shared ~128-step
/// doubling chain over `(P, k₀)` and `(ψP, k₁)` instead of a 254-step one.
pub fn g2_mul_gls(p: &G2Affine, k: Fr) -> G2Projective {
    if p.is_identity() || k.is_zero() {
        return G2Projective::identity();
    }
    let (k0, k1) = gls_decompose(&k);
    let psi_p = psi(p);
    let mut acc = G2Projective::identity();
    let bit = |limbs: &[u64; 4], i: usize| (limbs[i / 64] >> (i % 64)) & 1 == 1;
    for i in (0..128).rev() {
        acc = acc.double();
        if bit(&k0, i) {
            acc = acc.add_mixed(p);
        }
        if bit(&k1, i) {
            acc = acc.add_mixed(&psi_p);
        }
    }
    acc
}

/// `Σ kᵢ·Pᵢ` over G2 subgroup points: each term is split by GLS and the
/// doubled-size, half-width instance runs on the pooled Pippenger core.
///
/// # Panics
///
/// Panics if `bases.len() != scalars.len()`.
pub fn g2_msm(bases: &[G2Affine], scalars: &[Fr]) -> G2Projective {
    assert_eq!(bases.len(), scalars.len(), "mismatched msm input lengths");
    if bases.is_empty() {
        return G2Projective::identity();
    }
    if bases.len() < 16 {
        let mut acc = G2Projective::identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc = acc.add(&g2_mul_gls(b, *s));
        }
        return acc;
    }
    let psi_bases: Vec<G2Affine> = bases.iter().map(psi).collect();
    let mut limbs0 = Vec::with_capacity(scalars.len());
    let mut limbs1 = Vec::with_capacity(scalars.len());
    for s in scalars {
        let (l0, l1) = gls_decompose(s);
        limbs0.push(l0);
        limbs1.push(l1);
    }
    // 132 = 128 value bits + the signed-recoding carry bit, rounded into
    // whole windows; half the window count of the generic 256-bit path.
    msm_limbs(&[(bases, limbs0), (&psi_bases, limbs1)], 132)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msm::naive_msm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_g2(rng: &mut StdRng, n: usize) -> (Vec<G2Affine>, Vec<Fr>) {
        let g = G2Projective::generator();
        let bases: Vec<G2Affine> = (0..n).map(|_| g.mul(Fr::random(rng)).to_affine()).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(rng)).collect();
        (bases, scalars)
    }

    #[test]
    fn psi_lands_on_curve_and_acts_as_lambda() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..4 {
            let p = G2Projective::generator()
                .mul(Fr::random(&mut rng))
                .to_affine();
            let image = psi(&p);
            assert!(image.is_on_curve(), "ψ must map the twist to itself");
            assert_eq!(
                image.to_projective(),
                p.mul(gls_lambda_fr()),
                "ψ acts as [λ] on the order-r subgroup"
            );
        }
    }

    #[test]
    fn lambda_satisfies_characteristic_equation() {
        // ψ² − [t]ψ + [p] = 0 restricted to the subgroup: λ² − tλ + p ≡ 0
        // (mod r), with t − 1 = 6x² = λ.
        let l = gls_lambda_fr();
        let t = l + Fr::one();
        let p_mod_r = {
            use waku_arith::biguint::BigUint;
            let p = BigUint::from_limbs(&<Fq as PrimeField>::MODULUS);
            let r = BigUint::from_limbs(&<Fr as PrimeField>::MODULUS);
            let mut limbs = [0u64; 4];
            for (dst, src) in limbs.iter_mut().zip(p.rem(&r).to_fixed_limbs(4)) {
                *dst = src;
            }
            Fr::from_canonical_limbs(limbs).unwrap()
        };
        assert_eq!(l * l - t * l + p_mod_r, Fr::zero());
    }

    #[test]
    fn decomposition_reconstructs_scalar() {
        let mut rng = StdRng::seed_from_u64(22);
        let lambda = gls_lambda_fr();
        for _ in 0..8 {
            let k = Fr::random(&mut rng);
            let (k0, k1) = gls_decompose(&k);
            let f0 = Fr::from_canonical_limbs(k0).unwrap();
            let f1 = Fr::from_canonical_limbs(k1).unwrap();
            assert_eq!(f0 + f1 * lambda, k);
        }
    }

    #[test]
    fn gls_mul_matches_plain_mul() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = G2Projective::generator();
        for _ in 0..4 {
            let p = g.mul(Fr::random(&mut rng)).to_affine();
            let k = Fr::random(&mut rng);
            assert_eq!(g2_mul_gls(&p, k), p.mul(k));
        }
        assert!(g2_mul_gls(&G2Affine::identity(), Fr::one()).is_identity());
        assert!(g2_mul_gls(&G2Affine::generator(), Fr::zero()).is_identity());
    }

    #[test]
    fn gls_msm_matches_naive_small_and_large() {
        let mut rng = StdRng::seed_from_u64(24);
        let (b_small, s_small) = random_g2(&mut rng, 7);
        assert_eq!(g2_msm(&b_small, &s_small), naive_msm(&b_small, &s_small));
        let (b_large, s_large) = random_g2(&mut rng, 48);
        assert_eq!(g2_msm(&b_large, &s_large), naive_msm(&b_large, &s_large));
    }

    #[test]
    fn gls_msm_edge_cases() {
        let mut rng = StdRng::seed_from_u64(25);
        let (mut bases, mut scalars) = random_g2(&mut rng, 20);
        bases[0] = G2Affine::identity();
        scalars[1] = Fr::zero();
        scalars[2] = gls_lambda_fr(); // k₀ = 0, k₁ = 1
        scalars[3] = Fr::one(); // k₁ = 0
        assert_eq!(g2_msm(&bases, &scalars), naive_msm(&bases, &scalars));
        assert!(g2_msm(&[], &[]).is_identity());
    }
}
