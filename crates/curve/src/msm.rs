//! Multi-scalar multiplication (Pippenger's bucket algorithm).
//!
//! The Groth16 prover and trusted setup are dominated by MSMs over a few
//! thousand bases; this implementation combines two optimizations to keep
//! proving in the paper's "interactive" regime (§IV reports ≈0.5 s proof
//! generation):
//!
//! * **Batch-affine buckets** — bucket accumulation uses plain affine
//!   addition (`λ = Δy/Δx`: 2M + 1S per add) with the divisions amortized
//!   by Montgomery batch inversion (≈3M each), instead of the ≈11M
//!   projective `add_mixed` formulas. Pairs are reduced tree-style so every
//!   round shares one inversion across *all* buckets of a window.
//! * **Work-stealing windows** — the independent Pippenger windows are
//!   scheduled on the [`waku_pool`] work-stealing pool, so concurrency is
//!   capped at the pool size instead of spawning one OS thread per window
//!   (previously ~37 raw threads for a 7-bit-window MSM).

use waku_arith::fields::Fr;
use waku_arith::traits::{Field, PrimeField};

use crate::point::{Affine, BatchInvert, CurveParams, Projective};

/// Picks the Pippenger window size (in bits) for `n` terms.
///
/// Tuned for the signed-digit batch-affine cost model: a bucket add costs
/// ~6 base-field muls and a bucket in the running sum ~27, with `2^(c−1)`
/// buckets per window, so the optimum `c` minimizes
/// `⌈256/c⌉·(6n + 27·2^(c−1))`; the break-evens below are where
/// consecutive `c` values cross.
fn window_size(n: usize) -> usize {
    match n {
        0..=1 => 1,
        2..=31 => 3,
        32..=255 => 5,
        256..=1479 => 7,
        1480..=4729 => 8,
        4730..=8399 => 9,
        8400..=24099 => 10,
        24100..=43899 => 11,
        43900..=78999 => 12,
        _ => 13,
    }
}

/// Extracts the `c`-bit window starting at bit `start` of a 256-bit scalar.
fn window_digit(limbs: &[u64; 4], start: usize, c: usize) -> usize {
    let limb = start / 64;
    let bit = start % 64;
    if limb >= 4 {
        return 0;
    }
    let mut v = limbs[limb] >> bit;
    if bit + c > 64 && limb + 1 < 4 {
        v |= limbs[limb + 1] << (64 - bit);
    }
    (v as usize) & ((1 << c) - 1)
}

/// Recodes a scalar into signed `c`-bit window digits in
/// `(−2^(c−1), 2^(c−1)]`, so each window needs only `2^(c−1)` buckets
/// (a negative digit adds the negated point, which is free in affine).
///
/// The scalar field is < 2²⁵⁴ while the windows cover ≥ 256 bits, so the
/// final carry is always absorbed by the top window.
fn recode_signed(limbs: &[u64; 4], c: usize, out: &mut [i16]) {
    let half = 1i64 << (c - 1);
    let full = 1i64 << c;
    let mut carry = 0i64;
    for (w, slot) in out.iter_mut().enumerate() {
        let raw = window_digit(limbs, w * c, c) as i64 + carry;
        if raw > half {
            *slot = (raw - full) as i16;
            carry = 1;
        } else {
            *slot = raw as i16;
            carry = 0;
        }
    }
    debug_assert_eq!(carry, 0, "scalar exceeds the window coverage");
}

/// How a pair of bucket points combines; classification is a pure function
/// of the two (immutable) inputs so the two passes of
/// [`batch_add_round`] agree without storing per-pair state.
enum PairKind {
    /// Distinct x-coordinates: `λ = (y₂−y₁)/(x₂−x₁)`.
    Add,
    /// Same point with `y ≠ 0`: `λ = 3x²/2y`.
    Double,
    /// Either input is ∞, or the points cancel: no inversion needed.
    Trivial,
}

fn classify<C: CurveParams>(p: &Affine<C>, q: &Affine<C>) -> PairKind {
    if p.infinity || q.infinity {
        PairKind::Trivial
    } else if p.x != q.x {
        PairKind::Add
    } else if p.y == q.y && !p.y.is_zero() {
        PairKind::Double
    } else {
        // x₁ = x₂ with y₁ = −y₂ (or a 2-torsion double): sum is ∞.
        PairKind::Trivial
    }
}

/// One tree-reduction round over all buckets of a window: adds the pairs
/// `(points[s+2k], points[s+2k+1])` of every bucket with a single batch
/// inversion and compacts the results to the bucket starts.
///
/// Within a bucket, pair `k`'s result lands at offset `k` and its sources
/// sit at offsets `2k` and `2k+1`, so processing pairs in ascending order
/// never overwrites a yet-unread source.
fn batch_add_round<C: CurveParams>(
    points: &mut [Affine<C>],
    starts: &[u32],
    lens: &mut [u32],
    denoms: &mut Vec<C::Base>,
) {
    // Pass 1: collect the λ denominators (1 as placeholder for trivial
    // pairs, which keeps pair order aligned with the inverted vector).
    denoms.clear();
    for (&s, &len) in starts.iter().zip(lens.iter()) {
        let s = s as usize;
        for k in 0..(len as usize) / 2 {
            let p = &points[s + 2 * k];
            let q = &points[s + 2 * k + 1];
            denoms.push(match classify(p, q) {
                PairKind::Add => q.x - p.x,
                PairKind::Double => p.y.double(),
                PairKind::Trivial => C::Base::one(),
            });
        }
    }
    C::Base::batch_invert(denoms);

    // Pass 2: apply the affine addition formulas and compact.
    let mut pair_idx = 0usize;
    for (&s, len) in starts.iter().zip(lens.iter_mut()) {
        let s = s as usize;
        let l = *len as usize;
        for k in 0..l / 2 {
            let p = points[s + 2 * k];
            let q = points[s + 2 * k + 1];
            let inv = denoms[pair_idx];
            pair_idx += 1;
            points[s + k] = match classify(&p, &q) {
                PairKind::Add => {
                    let lambda = (q.y - p.y) * inv;
                    let x3 = lambda.square() - p.x - q.x;
                    let y3 = lambda * (p.x - x3) - p.y;
                    Affine::new_unchecked(x3, y3)
                }
                PairKind::Double => {
                    let xx = p.x.square();
                    let lambda = (xx.double() + xx) * inv;
                    let x3 = lambda.square() - p.x.double();
                    let y3 = lambda * (p.x - x3) - p.y;
                    Affine::new_unchecked(x3, y3)
                }
                PairKind::Trivial => {
                    if p.infinity {
                        q
                    } else if q.infinity {
                        p
                    } else {
                        Affine::identity()
                    }
                }
            };
        }
        // Odd leftover survives into the next round, after the results.
        if l % 2 == 1 {
            points[s + l / 2] = points[s + l - 1];
        }
        *len = (l / 2 + l % 2) as u32;
    }
}

/// Computes the bucket-accumulated sum `Σ d·bucket_d` of one window via
/// batch-affine reduction followed by the running-sum trick. `parts` is a
/// logical concatenation of `(bases, signed digits)` runs — digits are
/// flattened per point (`digits[i·num_windows + w]`) — so callers can sum
/// several base/scalar lists in one MSM without copying them together.
fn window_sum<C: CurveParams>(
    parts: &[(&[Affine<C>], Vec<i16>)],
    w: usize,
    num_windows: usize,
    c: usize,
) -> Projective<C> {
    let num_buckets = 1usize << (c - 1);

    // Counting-sort the window's points into contiguous bucket ranges.
    let mut counts = vec![0u32; num_buckets];
    for (bases, digits) in parts {
        for (base, d) in bases.iter().zip(digits.iter().skip(w).step_by(num_windows)) {
            if *d != 0 && !base.infinity {
                counts[(d.unsigned_abs() - 1) as usize] += 1;
            }
        }
    }
    let mut starts = vec![0u32; num_buckets];
    let mut total = 0u32;
    for (st, count) in starts.iter_mut().zip(counts.iter()) {
        *st = total;
        total += count;
    }
    // Scatter, skipping the dead identity-fill of the buffer: the bucket
    // ranges partition [0, total) and each cursor slot advances once per
    // point, so every entry is written exactly once before it is read.
    let mut points: Vec<std::mem::MaybeUninit<Affine<C>>> = Vec::with_capacity(total as usize);
    // SAFETY: MaybeUninit needs no initialization; all `total` slots are
    // initialized by the scatter below before use.
    unsafe { points.set_len(total as usize) };
    let mut cursor = starts.clone();
    for (bases, digits) in parts {
        for (base, d) in bases.iter().zip(digits.iter().skip(w).step_by(num_windows)) {
            if *d != 0 && !base.infinity {
                let b = (d.unsigned_abs() - 1) as usize;
                points[cursor[b] as usize].write(if *d < 0 { base.neg() } else { *base });
                cursor[b] += 1;
            }
        }
    }
    // SAFETY: Σ counts = total, so the scatter initialized every slot;
    // MaybeUninit<T> has T's layout, making the buffer reinterpretation
    // sound (and Affine is Copy, so no drops are at stake).
    let mut points: Vec<Affine<C>> = {
        let mut buf = std::mem::ManuallyDrop::new(points);
        unsafe {
            Vec::from_raw_parts(
                buf.as_mut_ptr() as *mut Affine<C>,
                buf.len(),
                buf.capacity(),
            )
        }
    };

    // Tree-reduce every bucket to a single point.
    let mut lens = counts;
    let mut denoms: Vec<C::Base> = Vec::new();
    while lens.iter().any(|&l| l > 1) {
        batch_add_round(&mut points, &starts, &mut lens, &mut denoms);
    }

    // Running-sum trick: Σ d·bucket_d with only 2·(#buckets) additions.
    let mut running = Projective::<C>::identity();
    let mut acc = Projective::<C>::identity();
    for b in (0..num_buckets).rev() {
        if lens[b] == 1 {
            running = running.add_mixed(&points[starts[b] as usize]);
        }
        acc = acc.add(&running);
    }
    acc
}

/// Computes `Σ scalarᵢ · baseᵢ`.
///
/// # Panics
///
/// Panics if `bases.len() != scalars.len()`.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    msm_chunked(&[(bases, scalars)])
}

/// Computes `Σ Σ scalarᵢⱼ · baseᵢⱼ` over a logical concatenation of
/// base/scalar lists, as one Pippenger instance.
///
/// One larger MSM beats several small ones (the bucket phase is paid per
/// window per point, so fewer, wider windows win); the Groth16 prover uses
/// this to fuse the `L` and `H` query MSMs of the `C` element.
///
/// # Panics
///
/// Panics if any part's base and scalar lengths differ.
pub fn msm_chunked<C: CurveParams>(parts: &[(&[Affine<C>], &[Fr])]) -> Projective<C> {
    for (bases, scalars) in parts {
        assert_eq!(bases.len(), scalars.len(), "mismatched msm input lengths");
    }
    let n: usize = parts.iter().map(|(b, _)| b.len()).sum();
    if n == 0 {
        return Projective::identity();
    }
    if n < 32 {
        let mut acc = Projective::identity();
        for (bases, scalars) in parts {
            acc = acc.add(&naive_msm(bases, scalars));
        }
        return acc;
    }
    let with_limbs: Vec<LimbedPart<C>> = parts
        .iter()
        .map(|(bases, scalars)| {
            let limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
            (*bases, limbs)
        })
        .collect();
    msm_limbs(&with_limbs, 256)
}

/// A base slice paired with its scalars in canonical limb form — the
/// pre-chewed input [`msm_limbs`] consumes.
pub(crate) type LimbedPart<'a, C> = (&'a [Affine<C>], Vec<[u64; 4]>);

/// Pippenger over pre-limbed scalars whose values fit in `bits - 1` bits
/// (the extra bit absorbs the signed-recoding carry). `msm_chunked` calls
/// this with 256; the GLS G2 path (`crate::endo`) with 132, halving the
/// window count for its ≤128-bit decomposed scalars.
pub(crate) fn msm_limbs<C: CurveParams>(parts: &[LimbedPart<'_, C>], bits: usize) -> Projective<C> {
    let n: usize = parts.iter().map(|(b, _)| b.len()).sum();
    if n == 0 {
        return Projective::identity();
    }
    let c = window_size(n);
    let num_windows = bits.div_ceil(c);
    // Signed digits are recoded once (they carry between windows, so the
    // per-window tasks index a precomputed table instead).
    let with_digits: Vec<(&[Affine<C>], Vec<i16>)> = parts
        .iter()
        .map(|(bases, limbs)| {
            let mut digits = vec![0i16; limbs.len() * num_windows];
            for (l, out) in limbs.iter().zip(digits.chunks_mut(num_windows)) {
                recode_signed(l, c, out);
            }
            (*bases, digits)
        })
        .collect();

    // Each window is independent: a pool task per window, executed by at
    // most `pool size` threads via work stealing.
    let windows: Vec<usize> = (0..num_windows).collect();
    let window_sums =
        waku_pool::par_map(&windows, |&w| window_sum(&with_digits, w, num_windows, c));

    // Combine windows from the most significant down.
    let mut total = Projective::identity();
    for sum in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total = total.add(sum);
    }
    total
}

/// Reference double-and-add sum, used for small inputs and as a test oracle.
pub fn naive_msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len(), "mismatched msm input lengths");
    let mut acc = Projective::identity();
    for (b, s) in bases.iter().zip(scalars.iter()) {
        acc = acc.add(&b.mul(*s));
    }
    acc
}

/// Precomputed fixed-base multiplication table.
///
/// The Groth16 trusted setup multiplies one generator by tens of thousands
/// of scalars; with a `w`-bit window table each multiplication is just
/// `⌈256/w⌉` mixed additions.
#[derive(Clone, Debug)]
pub struct WindowTable<C: CurveParams> {
    window_bits: usize,
    /// `table[w][d-1] = (d << (w·bits)) · base` for digit d ≥ 1.
    table: Vec<Vec<Affine<C>>>,
}

impl<C: CurveParams> WindowTable<C> {
    /// Builds the table for `base` with `window_bits`-wide digits; the rows
    /// are filled as parallel pool tasks.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is 0 or greater than 16.
    pub fn new(base: Projective<C>, window_bits: usize) -> Self {
        assert!(
            (1..=16).contains(&window_bits),
            "window must be 1..=16 bits"
        );
        let windows = 256_usize.div_ceil(window_bits);
        let entries = (1usize << window_bits) - 1;
        // The row bases (base << w·bits) form a serial doubling chain…
        let mut window_bases = Vec::with_capacity(windows);
        let mut window_base = base;
        for _ in 0..windows {
            window_bases.push(window_base);
            for _ in 0..window_bits {
                window_base = window_base.double();
            }
        }
        // …but the rows themselves are independent.
        let table = waku_pool::par_map(&window_bases, |&wb| {
            let mut row = Vec::with_capacity(entries);
            let mut acc = wb;
            for _ in 0..entries {
                row.push(acc);
                acc = acc.add(&wb);
            }
            Projective::batch_to_affine(&row)
        });
        WindowTable { window_bits, table }
    }

    /// `scalar · base` via table lookups.
    pub fn mul(&self, scalar: Fr) -> Projective<C> {
        let limbs = scalar.to_canonical_limbs();
        let mut acc = Projective::identity();
        for (w, row) in self.table.iter().enumerate() {
            let digit = window_digit(&limbs, w * self.window_bits, self.window_bits);
            if digit != 0 {
                acc = acc.add_mixed(&row[digit - 1]);
            }
        }
        acc
    }

    /// Multiplies a batch of scalars, chunked across the pool (previously
    /// a hardcoded 8-way split with one raw thread per chunk).
    pub fn mul_batch(&self, scalars: &[Fr]) -> Vec<Projective<C>> {
        let mut out = vec![Projective::<C>::identity(); scalars.len()];
        let chunk = waku_pool::chunk_size_for(scalars.len(), 32);
        waku_pool::par_zip_chunks(scalars, &mut out, chunk, |_, s_chunk, o_chunk| {
            for (s, o) in s_chunk.iter().zip(o_chunk.iter_mut()) {
                *o = self.mul(*s);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::{G1Affine, G1Projective};
    use crate::g2::G2Affine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waku_arith::traits::Field;

    fn random_g1(rng: &mut StdRng, n: usize) -> (Vec<G1Affine>, Vec<Fr>) {
        let g = G1Projective::generator();
        let bases: Vec<G1Affine> = (0..n).map(|_| g.mul(Fr::random(rng)).to_affine()).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(rng)).collect();
        (bases, scalars)
    }

    #[test]
    fn pippenger_matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let (bases, scalars) = random_g1(&mut rng, 10);
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn pippenger_matches_naive_large() {
        let mut rng = StdRng::seed_from_u64(2);
        let (bases, scalars) = random_g1(&mut rng, 300);
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_with_zero_scalars() {
        let mut rng = StdRng::seed_from_u64(3);
        let (bases, mut scalars) = random_g1(&mut rng, 64);
        for s in scalars.iter_mut().step_by(2) {
            *s = Fr::zero();
        }
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_with_identity_bases_and_duplicates() {
        // Exercises the batch-affine special cases: ∞ inputs, equal points
        // (doubling), and P + (−P) cancellation inside one bucket.
        let mut rng = StdRng::seed_from_u64(9);
        let (mut bases, mut scalars) = random_g1(&mut rng, 96);
        bases[0] = G1Affine::identity();
        bases[1] = bases[2]; // forced doubling when digits collide
        scalars[1] = scalars[2];
        bases[3] = bases[4].neg();
        scalars[3] = scalars[4]; // same bucket, opposite points
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_matches_at_any_pool_size() {
        let mut rng = StdRng::seed_from_u64(10);
        let (bases, scalars) = random_g1(&mut rng, 200);
        let serial = waku_pool::with_threads(1, || msm(&bases, &scalars));
        let parallel = waku_pool::with_threads(4, || msm(&bases, &scalars));
        assert_eq!(serial, parallel);
        assert_eq!(serial, naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_empty() {
        assert!(msm::<crate::g1::G1Params>(&[], &[]).is_identity());
        assert!(msm_chunked::<crate::g1::G1Params>(&[]).is_identity());
    }

    #[test]
    fn msm_chunked_matches_concatenation() {
        let mut rng = StdRng::seed_from_u64(11);
        let (b1, s1) = random_g1(&mut rng, 150);
        let (b2, s2) = random_g1(&mut rng, 70);
        let (b3, s3) = random_g1(&mut rng, 5);
        let fused = msm_chunked(&[(&b1[..], &s1[..]), (&b2[..], &s2[..]), (&b3[..], &s3[..])]);
        let concat_bases: Vec<G1Affine> = [&b1[..], &b2[..], &b3[..]].concat();
        let concat_scalars: Vec<Fr> = [&s1[..], &s2[..], &s3[..]].concat();
        assert_eq!(fused, msm(&concat_bases, &concat_scalars));
        // Small total goes through the naive path.
        let small = msm_chunked(&[(&b3[..], &s3[..]), (&b3[..2], &s3[..2])]);
        assert_eq!(
            small,
            naive_msm(&b3, &s3).add(&naive_msm(&b3[..2], &s3[..2]))
        );
    }

    #[test]
    fn msm_g2() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = crate::g2::G2Projective::generator();
        let bases: Vec<G2Affine> = (0..40)
            .map(|_| g.mul(Fr::random(&mut rng)).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..40).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn window_table_matches_direct_mul() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = G1Projective::generator();
        let table = WindowTable::new(g, 6);
        for _ in 0..10 {
            let s = Fr::random(&mut rng);
            assert_eq!(table.mul(s), g.mul(s));
        }
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }

    #[test]
    fn window_table_batch() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = G1Projective::generator();
        let table = WindowTable::new(g, 8);
        let scalars: Vec<Fr> = (0..50).map(|_| Fr::random(&mut rng)).collect();
        let batch = table.mul_batch(&scalars);
        for (s, p) in scalars.iter().zip(&batch) {
            assert_eq!(*p, g.mul(*s));
        }
    }

    #[test]
    fn window_digit_reassembles_scalar() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Fr::random(&mut rng);
        let limbs = s.to_canonical_limbs();
        let c = 7;
        // Σ digit·2^(w·c) must reconstruct the scalar (checked limb-wise
        // via big integers).
        use waku_arith::biguint::BigUint;
        let mut acc = BigUint::zero();
        for w in (0..256_usize.div_ceil(c)).rev() {
            acc = acc.shl(c);
            acc = acc.add(&BigUint::from(window_digit(&limbs, w * c, c) as u64));
        }
        assert_eq!(acc, BigUint::from_limbs(&limbs));
    }
}
