//! Multi-scalar multiplication (Pippenger's bucket algorithm).
//!
//! The Groth16 prover and trusted setup are dominated by MSMs over a few
//! thousand bases; the bucket method with a window size tuned to the input
//! length plus window-level parallelism (via `std::thread::scope`)
//! keeps proving in the paper's "interactive" regime (§IV reports ≈0.5 s
//! proof generation).

use waku_arith::fields::Fr;
use waku_arith::traits::PrimeField;

use crate::point::{Affine, CurveParams, Projective};

/// Picks the Pippenger window size (in bits) for `n` terms.
fn window_size(n: usize) -> usize {
    match n {
        0..=1 => 1,
        2..=31 => 3,
        32..=255 => 5,
        256..=2047 => 7,
        2048..=16383 => 9,
        16384..=131071 => 11,
        _ => 13,
    }
}

/// Extracts the `c`-bit window starting at bit `start` of a 256-bit scalar.
fn window_digit(limbs: &[u64; 4], start: usize, c: usize) -> usize {
    let limb = start / 64;
    let bit = start % 64;
    if limb >= 4 {
        return 0;
    }
    let mut v = limbs[limb] >> bit;
    if bit + c > 64 && limb + 1 < 4 {
        v |= limbs[limb + 1] << (64 - bit);
    }
    (v as usize) & ((1 << c) - 1)
}

/// Computes `Σ scalarᵢ · baseᵢ`.
///
/// # Panics
///
/// Panics if `bases.len() != scalars.len()`.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len(), "mismatched msm input lengths");
    if bases.is_empty() {
        return Projective::identity();
    }
    if bases.len() < 32 {
        return naive_msm(bases, scalars);
    }
    let limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    let c = window_size(bases.len());
    let num_windows = 256_usize.div_ceil(c);

    // Each window is independent: accumulate buckets, then a running sum.
    let window_sums: Vec<Projective<C>> = {
        let mut sums = vec![Projective::<C>::identity(); num_windows];
        std::thread::scope(|scope| {
            for (w, slot) in sums.iter_mut().enumerate() {
                let limbs = &limbs;
                scope.spawn(move || {
                    let start = w * c;
                    let mut buckets = vec![Projective::<C>::identity(); (1 << c) - 1];
                    for (base, l) in bases.iter().zip(limbs.iter()) {
                        let digit = window_digit(l, start, c);
                        if digit != 0 {
                            buckets[digit - 1] = buckets[digit - 1].add_mixed(base);
                        }
                    }
                    // running-sum trick: Σ i·bucketᵢ
                    let mut running = Projective::<C>::identity();
                    let mut acc = Projective::<C>::identity();
                    for b in buckets.iter().rev() {
                        running = running.add(b);
                        acc = acc.add(&running);
                    }
                    *slot = acc;
                });
            }
        });
        sums
    };

    // Combine windows from the most significant down.
    let mut total = Projective::identity();
    for sum in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total = total.add(sum);
    }
    total
}

/// Reference double-and-add sum, used for small inputs and as a test oracle.
pub fn naive_msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(bases.len(), scalars.len(), "mismatched msm input lengths");
    let mut acc = Projective::identity();
    for (b, s) in bases.iter().zip(scalars.iter()) {
        acc = acc.add(&b.mul(*s));
    }
    acc
}

/// Precomputed fixed-base multiplication table.
///
/// The Groth16 trusted setup multiplies one generator by tens of thousands
/// of scalars; with a `w`-bit window table each multiplication is just
/// `⌈256/w⌉` mixed additions.
#[derive(Clone, Debug)]
pub struct WindowTable<C: CurveParams> {
    window_bits: usize,
    /// `table[w][d-1] = (d << (w·bits)) · base` for digit d ≥ 1.
    table: Vec<Vec<Affine<C>>>,
}

impl<C: CurveParams> WindowTable<C> {
    /// Builds the table for `base` with `window_bits`-wide digits.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is 0 or greater than 16.
    pub fn new(base: Projective<C>, window_bits: usize) -> Self {
        assert!(
            (1..=16).contains(&window_bits),
            "window must be 1..=16 bits"
        );
        let windows = 256_usize.div_ceil(window_bits);
        let entries = (1usize << window_bits) - 1;
        let mut table = Vec::with_capacity(windows);
        let mut window_base = base;
        for _ in 0..windows {
            let mut row = Vec::with_capacity(entries);
            let mut acc = window_base;
            for _ in 0..entries {
                row.push(acc);
                acc = acc.add(&window_base);
            }
            table.push(Projective::batch_to_affine(&row));
            for _ in 0..window_bits {
                window_base = window_base.double();
            }
        }
        WindowTable { window_bits, table }
    }

    /// `scalar · base` via table lookups.
    pub fn mul(&self, scalar: Fr) -> Projective<C> {
        let limbs = scalar.to_canonical_limbs();
        let mut acc = Projective::identity();
        for (w, row) in self.table.iter().enumerate() {
            let digit = window_digit(&limbs, w * self.window_bits, self.window_bits);
            if digit != 0 {
                acc = acc.add_mixed(&row[digit - 1]);
            }
        }
        acc
    }

    /// Multiplies a batch of scalars, parallelized across chunks.
    pub fn mul_batch(&self, scalars: &[Fr]) -> Vec<Projective<C>> {
        let chunk = (scalars.len() / 8).max(256);
        let mut out = vec![Projective::<C>::identity(); scalars.len()];
        std::thread::scope(|scope| {
            for (s_chunk, o_chunk) in scalars.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (s, o) in s_chunk.iter().zip(o_chunk.iter_mut()) {
                        *o = self.mul(*s);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::{G1Affine, G1Projective};
    use crate::g2::G2Affine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waku_arith::traits::Field;

    fn random_g1(rng: &mut StdRng, n: usize) -> (Vec<G1Affine>, Vec<Fr>) {
        let g = G1Projective::generator();
        let bases: Vec<G1Affine> = (0..n).map(|_| g.mul(Fr::random(rng)).to_affine()).collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(rng)).collect();
        (bases, scalars)
    }

    #[test]
    fn pippenger_matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let (bases, scalars) = random_g1(&mut rng, 10);
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn pippenger_matches_naive_large() {
        let mut rng = StdRng::seed_from_u64(2);
        let (bases, scalars) = random_g1(&mut rng, 300);
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_with_zero_scalars() {
        let mut rng = StdRng::seed_from_u64(3);
        let (bases, mut scalars) = random_g1(&mut rng, 64);
        for s in scalars.iter_mut().step_by(2) {
            *s = Fr::zero();
        }
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn msm_empty() {
        assert!(msm::<crate::g1::G1Params>(&[], &[]).is_identity());
    }

    #[test]
    fn msm_g2() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = crate::g2::G2Projective::generator();
        let bases: Vec<G2Affine> = (0..40)
            .map(|_| g.mul(Fr::random(&mut rng)).to_affine())
            .collect();
        let scalars: Vec<Fr> = (0..40).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn window_table_matches_direct_mul() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = G1Projective::generator();
        let table = WindowTable::new(g, 6);
        for _ in 0..10 {
            let s = Fr::random(&mut rng);
            assert_eq!(table.mul(s), g.mul(s));
        }
        assert!(table.mul(Fr::zero()).is_identity());
        assert_eq!(table.mul(Fr::one()), g);
    }

    #[test]
    fn window_table_batch() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = G1Projective::generator();
        let table = WindowTable::new(g, 8);
        let scalars: Vec<Fr> = (0..50).map(|_| Fr::random(&mut rng)).collect();
        let batch = table.mul_batch(&scalars);
        for (s, p) in scalars.iter().zip(&batch) {
            assert_eq!(*p, g.mul(*s));
        }
    }

    #[test]
    fn window_digit_reassembles_scalar() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Fr::random(&mut rng);
        let limbs = s.to_canonical_limbs();
        let c = 7;
        // Σ digit·2^(w·c) must reconstruct the scalar (checked limb-wise
        // via big integers).
        use waku_arith::biguint::BigUint;
        let mut acc = BigUint::zero();
        for w in (0..256_usize.div_ceil(c)).rev() {
            acc = acc.shl(c);
            acc = acc.add(&BigUint::from(window_digit(&limbs, w * c, c) as u64));
        }
        assert_eq!(acc, BigUint::from_limbs(&limbs));
    }
}
