//! Property-based tests for the BN254 group law and pairing bilinearity,
//! randomized over scalars (complementing the fixed-case unit tests).

use proptest::prelude::*;
use waku_arith::fields::Fr;
use waku_arith::traits::{Field, PrimeField};
use waku_curve::pairing::{multi_pairing, pairing};
use waku_curve::{Fp12, G1Affine, G1Projective, G2Affine, G2Projective};

fn arb_fr() -> impl Strategy<Value = Fr> {
    proptest::array::uniform32(any::<u8>()).prop_map(|bytes| Fr::from_le_bytes_mod_order(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn g1_scalar_distributivity(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        prop_assert_eq!(g.mul(a).add(&g.mul(b)), g.mul(a + b));
    }

    #[test]
    fn g1_mixed_add_matches_general(a in arb_fr(), b in arb_fr()) {
        let g = G1Projective::generator();
        let p = g.mul(a);
        let q = g.mul(b);
        prop_assert_eq!(p.add_mixed(&q.to_affine()), p.add(&q));
    }

    #[test]
    fn g1_affine_roundtrip_preserves_curve_membership(a in arb_fr()) {
        let p = G1Projective::generator().mul(a).to_affine();
        prop_assert!(p.is_on_curve());
        prop_assert_eq!(p.to_projective().to_affine(), p);
    }

    #[test]
    fn g2_scalar_distributivity(a in arb_fr(), b in arb_fr()) {
        let g = G2Projective::generator();
        prop_assert_eq!(g.mul(a).add(&g.mul(b)), g.mul(a + b));
    }

    #[test]
    fn g2_points_stay_on_curve(a in arb_fr()) {
        let p = G2Projective::generator().mul(a).to_affine();
        prop_assert!(p.is_on_curve());
    }
}

proptest! {
    // pairings are ~6 ms each; keep the case count low
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pairing_bilinearity_randomized(a in arb_fr(), b in arb_fr()) {
        let p = G1Projective::generator().mul(a).to_affine();
        let q = G2Projective::generator().mul(b).to_affine();
        let lhs = pairing(&p, &q);
        let base = pairing(&G1Affine::generator(), &G2Affine::generator());
        let ab = a * b;
        prop_assert_eq!(lhs, base.pow(&ab.to_canonical_limbs()));
    }

    #[test]
    fn groth16_cancellation_identity(a in arb_fr(), b in arb_fr()) {
        // e(aG, bH)·e(−abG, H) = 1 — the structure verification relies on.
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let product = multi_pairing(&[
            (g1.mul(a).to_affine(), g2.mul(b).to_affine()),
            (g1.mul(a * b).neg().to_affine(), G2Affine::generator()),
        ]);
        prop_assert_eq!(product, Fp12::one());
    }
}
