//! F3 (paper Figure 3): every branch of the §III-F routing decision tree,
//! exercised through the public node API with real proofs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

use waku_suite::arith::traits::Field;
use waku_suite::chain::{Address, Chain, ChainConfig, TxKind, ETHER};
use waku_suite::rln::{RlnProver, RlnVerifier};
use waku_suite::rln_relay::node::{NodeConfig, WakuRlnRelayNode};
use waku_suite::rln_relay::Outcome;

const DEPTH: usize = 8;

fn keys() -> &'static (Arc<RlnProver>, RlnVerifier) {
    static CELL: OnceLock<(Arc<RlnProver>, RlnVerifier)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF16);
        let (p, v) = RlnProver::keygen(DEPTH, &mut rng);
        (Arc::new(p), v)
    })
}

fn two_nodes(seed: u64) -> (Chain, WakuRlnRelayNode, WakuRlnRelayNode) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (prover, verifier) = keys();
    let config = NodeConfig::builder()
        .tree_depth(DEPTH)
        .epoch_length(std::time::Duration::from_secs(10))
        .build()
        .expect("valid node config");
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let mut make = |tag: u8, rng: &mut StdRng| {
        let addr = Address::from_seed(&[0xF1, tag, seed as u8]);
        chain.fund(addr, 10 * ETHER);
        let mut n = WakuRlnRelayNode::new(config, addr, Arc::clone(prover), verifier.clone(), rng);
        n.register(&mut chain);
        n
    };
    let a = make(0, &mut rng);
    let b = make(1, &mut rng);
    chain.mine_block();
    let mut a = a;
    let mut b = b;
    a.sync(&mut chain);
    b.sync(&mut chain);
    (chain, a, b)
}

#[test]
fn branch_relay() {
    let (mut chain, mut alice, mut bob) = two_nodes(1);
    let mut rng = StdRng::seed_from_u64(2);
    let bundle = alice.publish(b"valid", 1000, &mut rng).unwrap();
    assert_eq!(
        bob.handle_incoming(&bundle, 1000, &mut chain),
        Outcome::Relay
    );
    assert_eq!(bob.validation_metrics().relayed, 1);
}

#[test]
fn branch_epoch_gap_drop() {
    // "If the epoch value attached to the message has more than Thr gap
    //  with the routing peer's current epoch, the message is dropped."
    let (mut chain, mut alice, mut bob) = two_nodes(3);
    let mut rng = StdRng::seed_from_u64(4);
    let bundle = alice.publish(b"ancient", 1000, &mut rng).unwrap();
    // Receiver's clock is 10 epochs later.
    let outcome = bob.handle_incoming(&bundle, 2000, &mut chain);
    assert!(matches!(outcome, Outcome::EpochOutOfRange(gap) if gap == 100));
    assert_eq!(bob.validation_metrics().epoch_dropped, 1);
}

#[test]
fn branch_invalid_proof_drop() {
    // "In case of invalid proof, the message is dropped."
    let (mut chain, mut alice, mut bob) = two_nodes(5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut bundle = alice.publish(b"will tamper", 1000, &mut rng).unwrap();
    bundle.y += waku_suite::arith::Fr::one(); // share no longer matches proof
    assert_eq!(
        bob.handle_incoming(&bundle, 1000, &mut chain),
        Outcome::InvalidProof
    );
    assert_eq!(bob.validation_metrics().proof_rejected, 1);
}

#[test]
fn branch_duplicate_discard() {
    // "If (x,y) = (x',y'), then the message is a duplicate and should be
    //  discarded."
    let (mut chain, mut alice, mut bob) = two_nodes(7);
    let mut rng = StdRng::seed_from_u64(8);
    let bundle = alice.publish(b"same twice", 1000, &mut rng).unwrap();
    assert_eq!(
        bob.handle_incoming(&bundle, 1000, &mut chain),
        Outcome::Relay
    );
    assert_eq!(
        bob.handle_incoming(&bundle, 1001, &mut chain),
        Outcome::Duplicate
    );
    assert_eq!(bob.validation_metrics().duplicates, 1);
}

#[test]
fn branch_slash_on_distinct_shares() {
    // "If the identity share of the older message is different …
    //  then slashing takes place."
    let (mut chain, mut alice, mut bob) = two_nodes(9);
    let mut rng = StdRng::seed_from_u64(10);
    let b1 = alice.publish_unchecked(b"one", 1000, &mut rng).unwrap();
    let b2 = alice.publish_unchecked(b"two", 1005, &mut rng).unwrap();
    assert_eq!(b1.epoch, b2.epoch, "same epoch (T = 10 s)");
    assert_eq!(bob.handle_incoming(&b1, 1000, &mut chain), Outcome::Relay);
    match bob.handle_incoming(&b2, 1005, &mut chain) {
        Outcome::Spam(ev) => {
            assert_eq!(ev.recovered_secret, alice.identity().secret());
        }
        other => panic!("expected Spam, got {other:?}"),
    }
    assert_eq!(bob.validation_metrics().spam_detected, 1);
}

#[test]
fn branch_unknown_root_drop() {
    // A proof bound to a root this network never had (e.g. forged
    // membership or a fork) is dropped before proof verification.
    let (mut chain, mut alice, mut bob) = two_nodes(11);
    let mut rng = StdRng::seed_from_u64(12);
    let mut bundle = alice.publish(b"wrong root", 1000, &mut rng).unwrap();
    bundle.root += waku_suite::arith::Fr::one();
    assert_eq!(
        bob.handle_incoming(&bundle, 1000, &mut chain),
        Outcome::UnknownRoot
    );
    assert_eq!(bob.validation_metrics().root_dropped, 1);
}

#[test]
fn stale_root_window_tolerates_one_registration() {
    // §III-C: peers must stay synced; the recent-root window keeps
    // in-flight messages valid across a single membership update.
    let (mut chain, mut alice, mut bob) = two_nodes(13);
    let mut rng = StdRng::seed_from_u64(14);
    let bundle = alice.publish(b"pre-churn", 1000, &mut rng).unwrap();

    // Another registration lands before bob processes the message.
    let late_addr = Address::from_seed(b"late-joiner");
    chain.fund(late_addr, 10 * ETHER);
    chain.submit(
        late_addr,
        TxKind::Register {
            commitment: waku_suite::arith::Fr::from_u64_local(12345),
        },
        100,
    );
    chain.mine_block();
    bob.sync(&mut chain);

    assert_eq!(
        bob.handle_incoming(&bundle, 1000, &mut chain),
        Outcome::Relay
    );
}

// Local helper: keep PrimeField usage explicit in the test.
trait FromU64Local {
    fn from_u64_local(v: u64) -> Self;
}
impl FromU64Local for waku_suite::arith::Fr {
    fn from_u64_local(v: u64) -> Self {
        use waku_suite::arith::traits::PrimeField;
        Self::from_u64(v)
    }
}
