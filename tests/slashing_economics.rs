//! Economic invariants of the slashing flow (paper §I item 4, §III-F):
//! deposits are conserved, rewards go to the first valid slasher, and
//! concurrent detection by multiple routers resolves to exactly one
//! payout.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

use waku_suite::chain::{Address, Chain, ChainConfig, ETHER};
use waku_suite::rln::{RlnProver, RlnVerifier};
use waku_suite::rln_relay::node::{NodeConfig, WakuRlnRelayNode};
use waku_suite::rln_relay::Outcome;

const DEPTH: usize = 8;

fn keys() -> &'static (Arc<RlnProver>, RlnVerifier) {
    static CELL: OnceLock<(Arc<RlnProver>, RlnVerifier)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xEC0);
        let (p, v) = RlnProver::keygen(DEPTH, &mut rng);
        (Arc::new(p), v)
    })
}

fn setup(n: usize, seed: u64) -> (Chain, Vec<WakuRlnRelayNode>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (prover, verifier) = keys();
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let config = NodeConfig::builder()
        .tree_depth(DEPTH)
        .epoch_length(std::time::Duration::from_secs(10))
        .build()
        .expect("valid node config");
    let mut nodes: Vec<WakuRlnRelayNode> = (0..n)
        .map(|i| {
            let addr = Address::from_seed(&[0xEC, i as u8, seed as u8]);
            chain.fund(addr, 10 * ETHER);
            let mut node =
                WakuRlnRelayNode::new(config, addr, Arc::clone(prover), verifier.clone(), &mut rng);
            node.register(&mut chain);
            node
        })
        .collect();
    chain.mine_block();
    for node in nodes.iter_mut() {
        node.sync(&mut chain);
    }
    (chain, nodes)
}

#[test]
fn escrow_is_conserved_through_slashing() {
    let (mut chain, mut nodes) = setup(3, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let total_deposits = 3 * ETHER;
    assert_eq!(chain.contract().escrow(), total_deposits);

    let b1 = nodes[0].publish_unchecked(b"a", 100, &mut rng).unwrap();
    let b2 = nodes[0].publish_unchecked(b"b", 100, &mut rng).unwrap();
    nodes[1].handle_incoming(&b1, 100, &mut chain);
    nodes[1].handle_incoming(&b2, 100, &mut chain);
    chain.mine_block();
    nodes[1].sync(&mut chain);
    chain.mine_block();
    nodes[1].sync(&mut chain);

    // One deposit left escrow, exactly into the slasher's reward.
    assert_eq!(chain.contract().escrow(), total_deposits - ETHER);
    assert_eq!(nodes[1].metrics().rewards_wei, ETHER);
}

#[test]
// Routers are cross-indexed mutably, so index loops are the only option.
#[allow(clippy::needless_range_loop)]
fn concurrent_detectors_yield_exactly_one_payout() {
    // Both routers see the double-signal and both run commit-reveal; only
    // the first reveal finds the membership — the contract pays once.
    let (mut chain, mut nodes) = setup(4, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let b1 = nodes[0].publish_unchecked(b"x", 100, &mut rng).unwrap();
    let b2 = nodes[0].publish_unchecked(b"y", 100, &mut rng).unwrap();
    for router in 1..=2usize {
        assert_eq!(
            nodes[router].handle_incoming(&b1, 100, &mut chain),
            Outcome::Relay,
            "each router keeps its own nullifier map"
        );
        assert!(matches!(
            nodes[router].handle_incoming(&b2, 100, &mut chain),
            Outcome::Spam(_)
        ));
    }
    chain.mine_block(); // both commits land
    nodes[1].sync(&mut chain);
    nodes[2].sync(&mut chain);
    chain.mine_block(); // both reveals attempt; one wins
    nodes[1].sync(&mut chain);
    nodes[2].sync(&mut chain);

    let total_rewards = nodes[1].metrics().rewards_wei + nodes[2].metrics().rewards_wei;
    assert_eq!(total_rewards, ETHER, "exactly one payout for one spammer");
    // The spammer is removed exactly once.
    for node in nodes.iter_mut() {
        node.sync(&mut chain);
    }
    assert!(!nodes[0].is_registered());
}

#[test]
// Publisher/router pairs are cross-indexed mutably; index loops required.
#[allow(clippy::needless_range_loop)]
fn honest_members_never_lose_their_stake() {
    let (mut chain, mut nodes) = setup(3, 5);
    let mut rng = StdRng::seed_from_u64(6);
    // Heavy honest traffic: one message per epoch for 5 epochs each.
    for k in 0..5u64 {
        let now = 100 + k * 10;
        for i in 0..3usize {
            let bundle = nodes[i]
                .publish(format!("peer{i} epoch{k}").as_bytes(), now, &mut rng)
                .unwrap();
            for j in 0..3usize {
                if i != j {
                    let outcome = nodes[j].handle_incoming(&bundle, now, &mut chain);
                    assert!(
                        matches!(outcome, Outcome::Relay | Outcome::Duplicate),
                        "honest traffic must never be flagged: {outcome:?}"
                    );
                }
            }
        }
    }
    chain.mine_blocks(2);
    for node in nodes.iter_mut() {
        node.sync(&mut chain);
        assert!(node.is_registered(), "no honest member was slashed");
    }
    assert_eq!(chain.contract().escrow(), 3 * ETHER, "all stakes intact");
}
