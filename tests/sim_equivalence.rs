//! Scheduler equivalence for the §IV evaluation harness: a seeded
//! scenario must produce a **bit-identical** `ScenarioReport` no matter
//! how it is executed — serial scheduler or event-sharded scheduler, any
//! shard count, any pool size (`WAKU_POOL_THREADS ∈ {1, 2, 8}` via
//! `with_threads`), and either round-bounding strategy (the adaptive
//! Chandy–Misra lookahead or the legacy fixed quantum). This is the
//! sim-layer extension of `tests/parallel_equivalence.rs` (which pins the
//! same property for the proving pipeline).
//!
//! The reports compare with `==` across every field, including f64 ratios
//! and latency percentiles — not "statistically close", identical.

use waku_suite::gossip::{
    CrashSpec, FaultPlan, LinkFaults, Lookahead, NetworkConfig, PartitionSpec, SchedulerKind,
    SkewSpec,
};
use waku_suite::metrics::Snapshot;
use waku_suite::pool::with_threads;
use waku_suite::sim::{
    run_scenario, run_scenario_distributed, run_scenario_instrumented, run_scenario_with_metrics,
    worker_from_env, Defense, ScenarioConfig, ScenarioReport, WorkerCommand,
};

fn config_at(
    peers: usize,
    defense: Defense,
    scheduler: SchedulerKind,
    lookahead: Lookahead,
) -> ScenarioConfig {
    ScenarioConfig {
        peers,
        spammers: 3,
        duration_ms: 10_000,
        honest_interval_ms: 2_500,
        spam_interval_ms: 400,
        honest_publishers: Some(60),
        defense,
        net: NetworkConfig::builder()
            .degree(8)
            .scheduler(scheduler)
            .lookahead(lookahead)
            .build()
            .expect("valid net config"),
        seed: 31,
        ..ScenarioConfig::default()
    }
}

fn config(defense: Defense, scheduler: SchedulerKind, lookahead: Lookahead) -> ScenarioConfig {
    config_at(200, defense, scheduler, lookahead)
}

fn report(
    defense: Defense,
    scheduler: SchedulerKind,
    lookahead: Lookahead,
    threads: usize,
) -> ScenarioReport {
    with_threads(threads, || {
        run_scenario(&config(defense, scheduler, lookahead))
    })
}

const RLN: Defense = Defense::RlnRelay {
    epoch_secs: 1,
    thr: 1,
};

/// The acceptance criterion: seeded E6 reports are identical across the
/// serial scheduler and the sharded scheduler at every tested pool size
/// and shard count — with the adaptive lookahead enabled (the default)
/// and with the legacy fixed quantum.
#[test]
fn rln_reports_identical_across_schedulers_shards_and_pool_sizes() {
    let reference = report(RLN, SchedulerKind::Serial, Lookahead::Adaptive, 1);
    // Sanity: the reference run actually exercises the defense.
    assert!(reference.spam_sent > 0 && reference.honest_sent > 0);
    assert_eq!(reference.spammers_detected, 3, "all spammer keys recovered");
    assert!(
        reference.events_processed > 10_000,
        "non-trivial event load"
    );

    for threads in [1usize, 2, 8] {
        // The serial scheduler must not care about the pool at all.
        assert_eq!(
            reference,
            report(RLN, SchedulerKind::Serial, Lookahead::Adaptive, threads),
            "serial @ {threads} threads"
        );
        for shards in [2usize, 8, 25] {
            for lookahead in [Lookahead::Adaptive, Lookahead::Fixed] {
                assert_eq!(
                    reference,
                    report(RLN, SchedulerKind::Sharded { shards }, lookahead, threads),
                    "sharded {shards} shards @ {threads} threads, {lookahead:?}"
                );
            }
        }
    }
}

/// The adaptive lookahead must not barrier more often than the fixed
/// quantum it replaces (it is a strictly weaker round bound), while
/// producing the same report.
#[test]
fn adaptive_lookahead_cuts_barriers_without_changing_results() {
    let run = |lookahead| {
        with_threads(2, || {
            run_scenario_instrumented(&config(
                RLN,
                SchedulerKind::Sharded { shards: 8 },
                lookahead,
            ))
        })
    };
    let (adaptive_report, adaptive) = run(Lookahead::Adaptive);
    let (fixed_report, fixed) = run(Lookahead::Fixed);
    assert_eq!(
        adaptive_report, fixed_report,
        "results must not depend on lookahead"
    );
    assert_eq!(adaptive.shards, 8);
    assert!(
        adaptive.barriers <= fixed.barriers,
        "adaptive {} > fixed {} barriers",
        adaptive.barriers,
        fixed.barriers
    );
    assert!(
        adaptive.barriers < fixed.barriers,
        "adaptive horizon never extended a round (barriers {} == {})",
        adaptive.barriers,
        fixed.barriers
    );
}

/// The Auto heuristic is also equivalent — the knob the examples and
/// benches actually use. 600 peers so Auto genuinely resolves to the
/// sharded engine (it stays serial below 512); asserted, not assumed.
#[test]
fn auto_scheduler_matches_serial() {
    assert!(
        SchedulerKind::Auto.resolve(600) > 1,
        "test must exercise the Auto → sharded path"
    );
    let run = |scheduler| {
        with_threads(2, || {
            run_scenario(&config_at(600, RLN, scheduler, Lookahead::Adaptive))
        })
    };
    assert_eq!(run(SchedulerKind::Serial), run(SchedulerKind::Auto));
}

/// PoW uses publish-time delays instead of validator state; scoring-only
/// has no validators. Both paths must shard identically too.
#[test]
fn other_defenses_shard_identically() {
    let pow = Defense::Pow {
        min_pow: 2.0,
        honest_hashrate: 50.0,
        spammer_hashrate: 50_000.0,
    };
    for defense in [Defense::None, Defense::ScoringOnly, pow] {
        let serial = report(defense, SchedulerKind::Serial, Lookahead::Adaptive, 1);
        for lookahead in [Lookahead::Adaptive, Lookahead::Fixed] {
            let sharded = report(defense, SchedulerKind::Sharded { shards: 8 }, lookahead, 4);
            assert_eq!(
                serial, sharded,
                "defense {:?} {lookahead:?}",
                serial.defense
            );
        }
    }
}

/// The metrics snapshot shares the report's bit-identity: after dropping
/// the scheduler-dependent counters (the `engine_` name prefix — shards
/// and barriers genuinely differ between execution strategies), the
/// merged snapshot of a seeded run is identical across the serial and
/// sharded schedulers at every shard count and pool size. This is the
/// order-insensitive-merge guarantee of the fork-join shard recorders,
/// asserted end-to-end rather than on the recorder alone.
#[test]
fn metrics_snapshots_identical_across_schedulers() {
    let strip_engine = |mut snap: Snapshot| {
        snap.retain(|desc| !desc.name.starts_with("engine_"));
        snap
    };
    let run = |scheduler, threads| {
        with_threads(threads, || {
            run_scenario_with_metrics(&config(RLN, scheduler, Lookahead::Adaptive))
        })
    };

    let (reference_report, _, snap) = run(SchedulerKind::Serial, 1);
    let reference = strip_engine(snap);
    // The snapshot is live and agrees with the report on the shared
    // counters (no double bookkeeping drifting apart).
    assert!(!reference.is_empty());
    assert_eq!(
        reference.scalar("gossip_honest_delivered_total"),
        reference_report.honest_delivered
    );
    assert_eq!(
        reference.scalar("gossip_events_total"),
        reference_report.events_processed
    );
    let dwell = reference
        .histogram("gossip_event_dwell_ms")
        .expect("dwell histogram registered");
    assert!(dwell.count > 0, "dwell histogram observed events");

    for threads in [2usize, 8] {
        for shards in [2usize, 25] {
            let (report, _, snap) = run(SchedulerKind::Sharded { shards }, threads);
            assert_eq!(report, reference_report);
            assert_eq!(
                strip_engine(snap),
                reference,
                "sharded {shards} shards @ {threads} threads"
            );
        }
    }
}

/// The fault plane's determinism invariant, end-to-end: faults are drawn
/// from event-keyed hash streams (not scheduler order), so a seeded run
/// under a non-trivial `FaultPlan` — lossy/duplicating/reordering links,
/// a mid-run partition that heals, one peer that crashes and rejoins
/// cold, one that never comes back, and clock skew in both directions —
/// produces a bit-identical `ScenarioReport` AND metrics snapshot across
/// the serial and sharded schedulers at every tested shard count and
/// pool size. The fault counters themselves ride in the per-peer engine
/// catalogue (stripped below as `engine_`-prefixed), so they are
/// asserted equal explicitly: the *number of faults injected* must not
/// depend on how the simulation was scheduled either.
#[test]
fn fault_plan_runs_identical_across_schedulers() {
    let faulted = |scheduler| {
        let mut c = config(RLN, scheduler, Lookahead::Adaptive);
        c.net.faults = FaultPlan {
            seed: 0xF417,
            link: LinkFaults {
                drop_permille: 50,
                duplicate_permille: 30,
                reorder_permille: 40,
                extra_jitter_ms: 30,
                reorder_delay_ms: 25,
            },
            partitions: vec![PartitionSpec {
                start_ms: 5_000,
                end_ms: 9_000,
                cut: 40,
            }],
            crashes: vec![
                CrashSpec {
                    peer: 70,
                    crash_ms: 4_000,
                    restart_ms: 8_000,
                },
                CrashSpec {
                    peer: 71,
                    crash_ms: 6_000,
                    restart_ms: u64::MAX,
                },
            ],
            skews: vec![
                SkewSpec {
                    peer: 80,
                    at_ms: 3_500,
                    delta_ms: 700,
                },
                SkewSpec {
                    peer: 81,
                    at_ms: 6_000,
                    delta_ms: -1_500,
                },
            ],
        };
        c
    };
    let strip_engine = |mut snap: Snapshot| {
        snap.retain(|desc| !desc.name.starts_with("engine_"));
        snap
    };
    let run = |scheduler, threads: usize| {
        with_threads(threads, || run_scenario_with_metrics(&faulted(scheduler)))
    };

    let (reference_report, _, reference_snap) = run(SchedulerKind::Serial, 1);
    // Sanity: every fault class actually fired in the reference run.
    let reference_dropped = reference_snap.scalar("engine_msgs_dropped_fault");
    assert!(reference_dropped > 0, "link faults never bit");
    assert_eq!(
        reference_snap.scalar("peer_restarts"),
        1,
        "one crash rejoins, the other never does"
    );
    assert_eq!(reference_snap.scalar("partition_heals"), 1);
    assert_eq!(
        reference_report.post_window_from_ms, 9_000,
        "post window opens at the partition heal (the never-ending crash is ignored)"
    );
    assert!(reference_report.honest_delivered > 0);
    let reference = strip_engine(reference_snap);

    for threads in [1usize, 2, 8] {
        let (serial_report, _, serial_snap) = run(SchedulerKind::Serial, threads);
        assert_eq!(
            reference_report, serial_report,
            "serial @ {threads} threads"
        );
        assert_eq!(
            serial_snap.scalar("engine_msgs_dropped_fault"),
            reference_dropped,
            "serial @ {threads} threads"
        );
        assert_eq!(reference, strip_engine(serial_snap));
        for shards in [2usize, 8, 25] {
            let (report, _, snap) = run(SchedulerKind::Sharded { shards }, threads);
            assert_eq!(
                reference_report, report,
                "sharded {shards} shards @ {threads} threads"
            );
            assert_eq!(
                snap.scalar("engine_msgs_dropped_fault"),
                reference_dropped,
                "fault injection count depends on scheduling: {shards} shards @ {threads} threads"
            );
            assert_eq!(
                strip_engine(snap),
                reference,
                "sharded {shards} shards @ {threads} threads"
            );
        }
    }
}

/// Re-running the same sharded configuration is reproducible (the weaker
/// property, but the one users hit first when a seed "doesn't work").
#[test]
fn sharded_runs_are_self_reproducible() {
    let a = report(
        RLN,
        SchedulerKind::Sharded { shards: 8 },
        Lookahead::Adaptive,
        4,
    );
    let b = report(
        RLN,
        SchedulerKind::Sharded { shards: 8 },
        Lookahead::Adaptive,
        4,
    );
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Multi-process driver equivalence (the distributed oracle suite)
// ---------------------------------------------------------------------

/// Worker-mode entry point for the re-exec'd test binary. In a normal
/// test run `worker_from_env()` returns `None` and this test is a no-op
/// pass. When the coordinator spawns this same binary with the
/// `WAKU_DIST_*` environment plus a libtest filter selecting exactly
/// this test, the process connects back, replays the scenario over its
/// owned shard range, and exits through libtest (a worker error panics
/// here, so the child exits non-zero and the coordinator reports
/// `WorkerExited` instead of hanging).
#[test]
fn distributed_worker_entry() {
    if let Some(result) = worker_from_env() {
        result.expect("distributed worker failed");
    }
}

fn worker_cmd() -> WorkerCommand {
    WorkerCommand::current_exe(vec![
        "distributed_worker_entry".into(),
        "--exact".into(),
        "--test-threads=1".into(),
        "--quiet".into(),
    ])
    .expect("current test binary")
}

fn dist_config(defense: Defense) -> ScenarioConfig {
    // 120 peers / 6 shards: small enough to run 4 defenses x 3 worker
    // counts in CI, large enough that every worker count in {1, 2, 4}
    // owns a different shard partition.
    config_at(
        120,
        defense,
        SchedulerKind::Sharded { shards: 6 },
        Lookahead::Adaptive,
    )
}

/// The tentpole acceptance test: a seeded scenario executed by one
/// coordinator plus N worker *processes* produces a bit-identical
/// `ScenarioReport` and (engine-stripped) metrics snapshot to the
/// in-process scheduler, at every worker count in {1, 2, 4}, under all
/// four defense configurations.
#[test]
fn distributed_runs_identical_to_in_process() {
    let strip_engine = |mut snap: Snapshot| {
        snap.retain(|desc| !desc.name.starts_with("engine_"));
        snap
    };
    let cmd = worker_cmd();
    let pow = Defense::Pow {
        min_pow: 2.0,
        honest_hashrate: 50.0,
        spammer_hashrate: 50_000.0,
    };
    for defense in [Defense::None, Defense::ScoringOnly, pow, RLN] {
        let config = dist_config(defense);
        let (reference_report, reference_engine, reference_snap) =
            run_scenario_with_metrics(&config);
        let reference_snap = strip_engine(reference_snap);
        for workers in [1usize, 2, 4] {
            let (report, engine, snap) = run_scenario_distributed(&config, workers, &cmd)
                .unwrap_or_else(|e| panic!("{defense:?} @ {workers} workers: {e}"));
            assert_eq!(report, reference_report, "{defense:?} @ {workers} workers");
            assert_eq!(
                strip_engine(snap),
                reference_snap,
                "{defense:?} @ {workers} workers"
            );
            // The merged engine gauge must still see all six shards, and
            // the coordinator's round count is the barrier count.
            assert_eq!(engine.shards, reference_engine.shards);
            assert!(engine.barriers > 0);
        }
    }
}

/// One fault-plan-active case: the full deterministic fault plane (lossy
/// links, a healing partition, crash/restart, clock skew) rides through
/// the multi-process driver bit-identically too — fault draws are
/// event-keyed, so worker-local replay injects exactly the same faults.
#[test]
fn distributed_run_matches_under_fault_plan() {
    let strip_engine = |mut snap: Snapshot| {
        snap.retain(|desc| !desc.name.starts_with("engine_"));
        snap
    };
    let mut config = dist_config(RLN);
    config.net.faults = FaultPlan {
        seed: 0xF417,
        link: LinkFaults {
            drop_permille: 50,
            duplicate_permille: 30,
            reorder_permille: 40,
            extra_jitter_ms: 30,
            reorder_delay_ms: 25,
        },
        partitions: vec![PartitionSpec {
            start_ms: 5_000,
            end_ms: 9_000,
            cut: 40,
        }],
        crashes: vec![
            CrashSpec {
                peer: 70,
                crash_ms: 4_000,
                restart_ms: 8_000,
            },
            CrashSpec {
                peer: 71,
                crash_ms: 6_000,
                restart_ms: u64::MAX,
            },
        ],
        skews: vec![
            SkewSpec {
                peer: 80,
                at_ms: 3_500,
                delta_ms: 700,
            },
            SkewSpec {
                peer: 81,
                at_ms: 6_000,
                delta_ms: -1_500,
            },
        ],
    };
    let (reference_report, _, reference_snap) = run_scenario_with_metrics(&config);
    assert_eq!(
        reference_snap.scalar("partition_heals"),
        1,
        "fault plan must actually be active"
    );
    let reference_snap = strip_engine(reference_snap);
    let cmd = worker_cmd();
    for workers in [2usize, 4] {
        let (report, _, snap) = run_scenario_distributed(&config, workers, &cmd)
            .unwrap_or_else(|e| panic!("faulted @ {workers} workers: {e}"));
        assert_eq!(report, reference_report, "faulted @ {workers} workers");
        assert_eq!(
            snap.scalar("partition_heals"),
            1,
            "plan-derived heal count added exactly once @ {workers} workers"
        );
        assert_eq!(
            strip_engine(snap),
            reference_snap,
            "faulted @ {workers} workers"
        );
    }
}
