//! Negative-path coverage for the multi-process simulation driver: the
//! coordinator must turn every worker failure mode into a clean
//! [`ServiceError`] within its configured deadlines — no hang, no
//! partial report. The two modes pinned here:
//!
//! * a worker that **never connects** (the spawned process isn't a
//!   worker at all) → handshake timeout,
//! * a worker that **dies mid-quantum** (exits without replying to a
//!   `Round` frame, via the `WAKU_DIST_EXIT_AFTER_ROUNDS` fault hook)
//!   → worker-exited / broken-stream error from the round loop.
//!
//! Both paths kill the surviving children before returning, so the test
//! process leaks nothing.

use std::time::{Duration, Instant};

use waku_suite::gossip::{CoordinatorOptions, Lookahead, NetworkConfig, SchedulerKind};
use waku_suite::node::ServiceError;
use waku_suite::sim::distributed::ENV_EXIT_AFTER_ROUNDS;
use waku_suite::sim::{
    run_scenario_distributed_with_options, worker_from_env, Defense, ScenarioConfig, WorkerCommand,
};

/// Worker-mode entry for the re-exec'd crash test (see
/// `tests/sim_equivalence.rs` for the pattern). With the exit-after
/// fault hook armed, the worker process calls `std::process::exit(3)`
/// mid-round from inside the session loop — libtest never even reports.
#[test]
fn distributed_worker_entry() {
    if let Some(result) = worker_from_env() {
        result.expect("distributed worker failed");
    }
}

fn small_config() -> ScenarioConfig {
    ScenarioConfig {
        peers: 40,
        spammers: 2,
        duration_ms: 4_000,
        honest_interval_ms: 2_000,
        spam_interval_ms: 500,
        honest_publishers: Some(20),
        defense: Defense::ScoringOnly,
        net: NetworkConfig::builder()
            .degree(6)
            .scheduler(SchedulerKind::Sharded { shards: 4 })
            .lookahead(Lookahead::Adaptive)
            .build()
            .expect("valid net config"),
        seed: 7,
        ..ScenarioConfig::default()
    }
}

fn assert_transport(err: &ServiceError) {
    assert!(
        matches!(err, ServiceError::Transport { .. }),
        "expected a structured transport error, got: {err}"
    );
}

/// A worker that never speaks the protocol: the coordinator's handshake
/// deadline expires and the run fails with a structured error well
/// before any report could be assembled.
#[test]
fn never_connecting_worker_times_out_cleanly() {
    let cmd = WorkerCommand {
        program: "/bin/sleep".into(),
        args: vec!["30".into()],
        envs: Vec::new(),
    };
    let options = CoordinatorOptions {
        handshake_timeout: Duration::from_secs(1),
        io_timeout: Duration::from_secs(5),
    };
    let start = Instant::now();
    let err = run_scenario_distributed_with_options(&small_config(), 2, &cmd, options)
        .expect_err("a never-connecting worker must fail the run");
    let elapsed = start.elapsed();
    assert_transport(&err);
    let msg = err.to_string();
    assert!(
        msg.contains("handshake") || msg.contains("timed out"),
        "error should name the handshake stage: {msg}"
    );
    // The deadline, not the sleeping child's 30 s, bounds the failure.
    assert!(
        elapsed < Duration::from_secs(15),
        "coordinator hung for {elapsed:?} on a silent worker"
    );
}

/// A worker that crashes mid-quantum — after consuming a `Round` frame
/// but before replying — must surface as a clean error from the round
/// loop within the I/O deadline, never as a hang or a partial report.
#[test]
fn worker_exit_mid_quantum_fails_cleanly() {
    let mut cmd = WorkerCommand::current_exe(vec![
        "distributed_worker_entry".into(),
        "--exact".into(),
        "--test-threads=1".into(),
        "--quiet".into(),
    ])
    .expect("current test binary");
    cmd.envs
        .push((ENV_EXIT_AFTER_ROUNDS.to_string(), "3".to_string()));
    let options = CoordinatorOptions {
        handshake_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_secs(10),
    };
    let start = Instant::now();
    let err = run_scenario_distributed_with_options(&small_config(), 2, &cmd, options)
        .expect_err("a mid-quantum crash must fail the run");
    let elapsed = start.elapsed();
    assert_transport(&err);
    assert!(
        elapsed < Duration::from_secs(60),
        "coordinator hung for {elapsed:?} on a crashed worker"
    );
}
