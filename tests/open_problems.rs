//! The paper's §V **open problems**, demonstrated as executable scenarios:
//!
//! 1. *Exceeding the messaging rate via multiple registrations* — an
//!    attacker pays for k registrations and legitimately gets k messages
//!    per epoch; no router can detect it, but the cost scales linearly.
//! 2. *Escaping punishment by early withdrawal* — a spammer withdraws its
//!    stake before the slashing transaction lands, burning only the
//!    registration fee.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

use waku_suite::chain::{Address, Chain, ChainConfig, ContractError, TxKind, ETHER};
use waku_suite::rln::{RlnProver, RlnVerifier};
use waku_suite::rln_relay::node::{NodeConfig, WakuRlnRelayNode};
use waku_suite::rln_relay::Outcome;

const DEPTH: usize = 8;

fn keys() -> &'static (Arc<RlnProver>, RlnVerifier) {
    static CELL: OnceLock<(Arc<RlnProver>, RlnVerifier)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x09E7);
        let (p, v) = RlnProver::keygen(DEPTH, &mut rng);
        (Arc::new(p), v)
    })
}

fn config() -> NodeConfig {
    NodeConfig::builder()
        .tree_depth(DEPTH)
        .epoch_length(std::time::Duration::from_secs(10))
        .build()
        .expect("valid node config")
}

fn make_node(chain: &mut Chain, tag: &[u8], rng: &mut StdRng) -> WakuRlnRelayNode {
    let (prover, verifier) = keys();
    let addr = Address::from_seed(tag);
    chain.fund(addr, 10 * ETHER);
    let mut node = WakuRlnRelayNode::new(config(), addr, Arc::clone(prover), verifier.clone(), rng);
    node.register(chain);
    node
}

#[test]
fn open_problem_1_multiple_registrations_buy_aggregate_rate() {
    // "An attacker pays for multiple e.g., k registrations, and uses its
    //  aggregate quota for messaging i.e., k messages per epoch."
    let mut rng = StdRng::seed_from_u64(1);
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    // The attacker runs k = 3 node identities (funded from one pocket).
    let k = 3;
    let mut sybils: Vec<WakuRlnRelayNode> = (0..k)
        .map(|i| make_node(&mut chain, &[0xA7, i as u8], &mut rng))
        .collect();
    let mut router = make_node(&mut chain, b"router", &mut rng);
    chain.mine_block();
    for n in sybils.iter_mut().chain(std::iter::once(&mut router)) {
        n.sync(&mut chain);
    }
    let escrow_before = chain.contract().escrow();
    assert_eq!(escrow_before, (k as u128 + 1) * ETHER, "k deposits staked");

    // k messages in ONE epoch, one per identity — every single one passes
    // validation: the violation is invisible per-identity.
    let now = 1000u64;
    for (i, sybil) in sybils.iter_mut().enumerate() {
        let bundle = sybil
            .publish(format!("sybil burst {i}").as_bytes(), now, &mut rng)
            .unwrap();
        assert_eq!(
            router.handle_incoming(&bundle, now, &mut chain),
            Outcome::Relay,
            "identity {i}: within its own rate, undetectable"
        );
    }
    assert_eq!(router.validation_metrics().spam_detected, 0);

    // …but the economics hold: the quota costs k deposits, exactly the
    // "increasing the entry barrier" mitigation the paper describes.
    assert_eq!(chain.contract().escrow(), escrow_before);
    // And the moment any single identity exceeds ITS rate, it is caught:
    let greedy = &mut sybils[0];
    let extra = greedy
        .publish_unchecked(b"one too many", now, &mut rng)
        .unwrap();
    assert!(matches!(
        router.handle_incoming(&extra, now, &mut chain),
        Outcome::Spam(_)
    ));
}

#[test]
fn open_problem_2_early_withdrawal_escapes_the_slash() {
    // "A spammer can escape from getting slashed by withdrawing its fund
    //  from the contract before its spam activity gets caught."
    let mut rng = StdRng::seed_from_u64(2);
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let mut spammer = make_node(&mut chain, b"escaper", &mut rng);
    let mut router = make_node(&mut chain, b"watcher", &mut rng);
    chain.mine_block();
    spammer.sync(&mut chain);
    router.sync(&mut chain);
    let spammer_addr = spammer.address();
    let spammer_index = spammer.group().own_index().unwrap();
    let balance_before_spam = chain.balance(spammer_addr);

    // Spam two messages, then IMMEDIATELY submit the withdrawal with a
    // much higher gas price than the router's slashing transactions.
    let now = 1000u64;
    let b1 = spammer.publish_unchecked(b"hit", now, &mut rng).unwrap();
    let b2 = spammer
        .publish_unchecked(b"and run", now, &mut rng)
        .unwrap();
    chain.submit(
        spammer_addr,
        TxKind::Withdraw {
            index: spammer_index,
        },
        1_000, // outbids the router's 100 gwei commit
    );

    // The router detects and starts commit-reveal — but the commit shares
    // a block with (and is ordered after) the withdrawal.
    assert_eq!(router.handle_incoming(&b1, now, &mut chain), Outcome::Relay);
    assert!(matches!(
        router.handle_incoming(&b2, now, &mut chain),
        Outcome::Spam(_)
    ));
    chain.mine_block(); // withdrawal executes first (gas price order)
    router.sync(&mut chain); // reveal goes out
    chain.mine_block();
    router.sync(&mut chain);

    // The slash reveal reverted: the membership was already gone.
    assert_eq!(router.metrics().rewards_wei, 0, "no reward to collect");
    assert_eq!(
        chain.contract().escrow(),
        ETHER,
        "only the router's own stake remains"
    );
    // The spammer got its deposit back (minus gas) — the escape the paper
    // flags as an open problem. Its only loss is the registration gas.
    let balance_after = chain.balance(spammer_addr);
    assert!(
        balance_after > balance_before_spam,
        "deposit refunded: {balance_after} vs {balance_before_spam}"
    );
    // The spammer is out of the group either way.
    spammer.sync(&mut chain);
    assert!(!spammer.is_registered());
}

#[test]
fn double_registration_of_same_commitment_is_rejected() {
    // Supporting invariant for the Sybil economics: an attacker cannot
    // stretch one deposit across two slots.
    let mut rng = StdRng::seed_from_u64(3);
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let node = make_node(&mut chain, b"dup", &mut rng);
    chain.mine_block();
    let tx = chain.submit(
        node.address(),
        TxKind::Register {
            commitment: node.commitment(),
        },
        100,
    );
    chain.mine_block();
    let receipt = chain.receipt(tx).unwrap();
    assert!(!receipt.success);
    assert_eq!(receipt.error, Some(ContractError::AlreadyRegistered));
}
