//! F1 (paper Figure 1): the full system, end to end, with **real
//! cryptography on the wire** — RLN bundles (Groth16 proofs included)
//! serialized into gossip messages, validated by every routing peer,
//! spam detected mid-network, and the spammer slashed on-chain.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

use waku_suite::chain::{Address, Chain, ChainConfig, ETHER};
use waku_suite::gossip::{Network, NetworkConfig, TrafficClass, Validation};
use waku_suite::rln::{RlnMessageBundle, RlnProver, RlnVerifier};
use waku_suite::rln_relay::node::{NodeConfig, WakuRlnRelayNode};
use waku_suite::rln_relay::Outcome;

const DEPTH: usize = 8;
const TOPIC: u32 = 1;
const EPOCH_SECS: u64 = 10;

fn keys() -> &'static (Arc<RlnProver>, RlnVerifier) {
    static CELL: OnceLock<(Arc<RlnProver>, RlnVerifier)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xE2E);
        let (p, v) = RlnProver::keygen(DEPTH, &mut rng);
        (Arc::new(p), v)
    })
}

fn node_config() -> NodeConfig {
    NodeConfig::builder()
        .tree_depth(DEPTH)
        .epoch_length(std::time::Duration::from_secs(EPOCH_SECS))
        .build()
        .expect("valid node config")
}

/// Builds `n` registered-and-synced nodes plus the chain.
fn build_network(n: usize, seed: u64) -> (Chain, Vec<WakuRlnRelayNode>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (prover, verifier) = keys();
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let mut nodes: Vec<WakuRlnRelayNode> = (0..n)
        .map(|i| {
            let addr = Address::from_seed(&[0xE2, i as u8, seed as u8]);
            chain.fund(addr, 10 * ETHER);
            let mut node = WakuRlnRelayNode::new(
                node_config(),
                addr,
                Arc::clone(prover),
                verifier.clone(),
                &mut rng,
            );
            node.register(&mut chain);
            node
        })
        .collect();
    chain.mine_block();
    for node in nodes.iter_mut() {
        node.sync(&mut chain);
    }
    (chain, nodes)
}

#[test]
fn honest_bundle_propagates_through_gossip_with_real_proofs() {
    let (_chain, nodes) = build_network(5, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let verifier = keys().1.clone();

    // Gossip transport with a full RLN validator at each peer.
    let mut net = Network::new(
        NetworkConfig::builder()
            .peers(5)
            .degree(3)
            .seed(3)
            .build()
            .expect("valid net config"),
    );
    net.subscribe_all(TOPIC);
    let groups: Vec<_> = nodes.iter().map(|n| n.group().clone()).collect();
    for (p, group) in groups.iter().enumerate() {
        let verifier = verifier.clone();
        let group = group.clone();
        net.set_validator_fn(p, move |_, message, local_ms| {
            let Some(bundle) = RlnMessageBundle::from_bytes(&message.data) else {
                return Validation::Reject;
            };
            // epoch gap
            let epoch = (local_ms / 1000) / EPOCH_SECS;
            if epoch.abs_diff(bundle.epoch) > 1 {
                return Validation::Ignore;
            }
            // root + REAL Groth16 verification on the wire bytes
            if bundle.root != group.root() || !verifier.verify_bundle(&bundle) {
                return Validation::Reject;
            }
            Validation::Accept
        });
    }

    // Node 0 publishes at wall time aligned with sim time 5000 ms.
    let mut publisher = nodes.into_iter().next().unwrap();
    let bundle = publisher
        .publish(b"hello with a real proof", 5, &mut rng)
        .unwrap();
    net.run_until(4_000);
    net.publish_at(5_000, 0, TOPIC, bundle.to_bytes(), TrafficClass::Honest);
    net.run_until(30_000);

    let stats = net.total_stats();
    assert_eq!(
        stats.honest_delivered, 4,
        "all four other peers validated the Groth16 proof and relayed"
    );
    assert_eq!(stats.rejected, 0);
}

#[test]
fn tampered_bundle_is_rejected_at_first_hop() {
    let (_chain, nodes) = build_network(5, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let verifier = keys().1.clone();

    let mut net = Network::new(
        NetworkConfig::builder()
            .peers(5)
            .degree(3)
            .seed(6)
            .build()
            .expect("valid net config"),
    );
    net.subscribe_all(TOPIC);
    let groups: Vec<_> = nodes.iter().map(|n| n.group().clone()).collect();
    for (p, group) in groups.iter().enumerate() {
        let verifier = verifier.clone();
        let group = group.clone();
        net.set_validator_fn(p, move |_, message, _| {
            let Some(bundle) = RlnMessageBundle::from_bytes(&message.data) else {
                return Validation::Reject;
            };
            if bundle.root != group.root() || !verifier.verify_bundle(&bundle) {
                return Validation::Reject;
            }
            Validation::Accept
        });
    }

    let mut publisher = nodes.into_iter().next().unwrap();
    let bundle = publisher.publish(b"will be tampered", 5, &mut rng).unwrap();
    let mut tampered = bundle.clone();
    tampered.payload = b"swapped payload!".to_vec(); // proof no longer binds

    net.run_until(4_000);
    net.publish_at(5_000, 0, TOPIC, tampered.to_bytes(), TrafficClass::Invalid);
    net.run_until(30_000);

    let stats = net.total_stats();
    assert_eq!(stats.invalid_delivered, 0, "never accepted anywhere");
    assert!(stats.rejected >= 1, "rejected at the first hop(s)");
    assert!(
        stats.validations <= 4,
        "the paper: effect limited to direct connections, got {}",
        stats.validations
    );
}

#[test]
fn network_detects_and_slashes_spammer_with_real_proofs() {
    let (mut chain, mut nodes) = build_network(4, 7);
    let mut rng = StdRng::seed_from_u64(8);

    // Spammer = node 3; router = node 1. Two real proofs, same epoch.
    let spam1 = nodes[3]
        .publish_unchecked(b"spam alpha", 100, &mut rng)
        .unwrap();
    let spam2 = nodes[3]
        .publish_unchecked(b"spam beta", 100, &mut rng)
        .unwrap();
    let spammer_commitment = nodes[3].commitment();

    // Wire round-trip (serialize → parse) like the real network does.
    let spam1 = RlnMessageBundle::from_bytes(&spam1.to_bytes()).unwrap();
    let spam2 = RlnMessageBundle::from_bytes(&spam2.to_bytes()).unwrap();

    assert_eq!(
        nodes[1].handle_incoming(&spam1, 100, &mut chain),
        Outcome::Relay
    );
    match nodes[1].handle_incoming(&spam2, 100, &mut chain) {
        Outcome::Spam(ev) => assert_eq!(ev.recovered_commitment(), spammer_commitment),
        other => panic!("expected spam, got {other:?}"),
    }

    // commit → mine → reveal → mine → reward
    chain.mine_block();
    nodes[1].sync(&mut chain);
    chain.mine_block();
    for node in nodes.iter_mut() {
        node.sync(&mut chain);
    }
    assert!(!nodes[3].is_registered(), "spammer removed everywhere");
    assert_eq!(nodes[1].metrics().rewards_wei, ETHER, "router rewarded");

    // And honest traffic still flows among the remaining members.
    let bundle = nodes[0].publish(b"life goes on", 200, &mut rng).unwrap();
    assert_eq!(
        nodes[2].handle_incoming(&bundle, 200, &mut chain),
        Outcome::Relay
    );
}
