//! Parallel-vs-serial equivalence of the proving pipeline.
//!
//! Everything scheduled on the `waku-pool` work-stealing pool — Pippenger
//! MSM windows, FFT butterfly stages, the prover's concurrent tasks — must
//! produce *bit-identical* results at any pool size. These properties pin
//! that down by running the same computation under `with_threads(1)`
//! (pure serial, what `WAKU_POOL_THREADS=1` gives) and a multi-worker
//! pool, plus oracle checks against the naive implementations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_suite::arith::fft::{Radix2Domain, PAR_FFT_MIN};
use waku_suite::arith::fields::Fr;
use waku_suite::arith::traits::{Field, PrimeField};
use waku_suite::curve::msm::{msm, naive_msm, WindowTable};
use waku_suite::curve::{G1Affine, G1Projective};
use waku_suite::pool::with_threads;
use waku_suite::snark::gadgets::{quintic, Wire};
use waku_suite::snark::{prove, setup, verify, ConstraintSystem, Proof};

fn random_points(seed: u64, n: usize) -> (Vec<G1Affine>, Vec<Fr>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = G1Projective::generator();
    let bases: Vec<G1Affine> = (0..n)
        .map(|_| g.mul(Fr::random(&mut rng)).to_affine())
        .collect();
    let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    (bases, scalars)
}

/// `x⁵ = out` with `out` public: small but goes through every prover stage
/// (quotient FFTs, all MSMs).
fn quintic_cs(x: u64) -> ConstraintSystem {
    let mut cs = ConstraintSystem::new();
    let out_val = Fr::from_u64(x).pow(&[5]);
    let out = cs.alloc_input(out_val);
    let x_var = cs.alloc_witness(Fr::from_u64(x));
    let xw = Wire::from_var(&cs, x_var);
    let x5 = quintic(&mut cs, &xw);
    let out_wire = Wire::from_var(&cs, out);
    waku_suite::snark::gadgets::enforce_equal(&mut cs, &x5, &out_wire);
    cs.finalize();
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pool_msm_matches_naive_oracle(seed in 0u64..1_000_000, n in 33usize..220) {
        let (bases, scalars) = random_points(seed, n);
        let expected = naive_msm(&bases, &scalars);
        let serial = with_threads(1, || msm(&bases, &scalars));
        let pooled = with_threads(4, || msm(&bases, &scalars));
        prop_assert_eq!(serial, expected);
        prop_assert_eq!(pooled, expected);
    }

    #[test]
    fn parallel_fft_matches_serial(seed in 0u64..1_000_000) {
        let n = PAR_FFT_MIN; // smallest size that takes the parallel path
        let mut rng = StdRng::seed_from_u64(seed);
        let domain = Radix2Domain::<Fr>::new(n).unwrap();
        let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let serial_evals = with_threads(1, || domain.fft(&coeffs));
        let pooled_evals = with_threads(3, || domain.fft(&coeffs));
        prop_assert_eq!(&serial_evals, &pooled_evals);
        let serial_back = with_threads(1, || domain.coset_ifft(&serial_evals));
        let pooled_back = with_threads(5, || domain.coset_ifft(&serial_evals));
        prop_assert_eq!(serial_back, pooled_back);
    }

    #[test]
    fn window_table_batch_matches_per_scalar_mul(seed in 0u64..1_000_000, n in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let (serial, pooled) = (
            with_threads(1, || {
                let table = WindowTable::new(G1Projective::generator(), 6);
                table.mul_batch(&scalars)
            }),
            with_threads(4, || {
                let table = WindowTable::new(G1Projective::generator(), 6);
                table.mul_batch(&scalars)
            }),
        );
        prop_assert_eq!(&serial[..], &pooled[..]);
        for (s, p) in scalars.iter().zip(&serial) {
            prop_assert_eq!(*p, G1Projective::generator().mul(*s));
        }
    }
}

#[test]
fn seeded_prove_is_deterministic_at_any_pool_size() {
    let cs = quintic_cs(3);
    let mut rng = StdRng::seed_from_u64(7);
    let pk = setup(&cs, &mut rng);

    let proof_at = |threads: usize| -> Proof {
        with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(42);
            prove(&pk, &cs, &mut rng).unwrap()
        })
    };

    // Identical seeded RNG streams ⇒ identical proofs, per pool size…
    assert_eq!(proof_at(1), proof_at(1));
    assert_eq!(proof_at(4), proof_at(4));
    // …and the pool size itself must not leak into the proof.
    let serial = proof_at(1);
    let pooled = proof_at(4);
    assert_eq!(serial, pooled, "pool size changed the proof bytes");
    assert_eq!(serial.to_bytes(), pooled.to_bytes());
    assert!(verify(&pk.vk, &serial, &[Fr::from_u64(243)]).unwrap());
}

#[test]
fn seeded_rln_prove_message_is_deterministic() {
    use waku_suite::rln::{Identity, RlnProver};

    let depth = 4;
    let mut rng = StdRng::seed_from_u64(1);
    let (prover, verifier) = RlnProver::keygen(depth, &mut rng);
    let identity = Identity::random(&mut rng);
    let zeros = waku_suite::merkle::zeros::zero_hashes(depth);
    let path = waku_suite::merkle::MerklePath {
        index: 0,
        siblings: zeros[..depth].to_vec(),
    };

    let bundle_at = |threads: usize| {
        with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(9);
            prover
                .prove_message(&identity, &path, b"equivalence", 77, &mut rng)
                .unwrap()
        })
    };
    let serial = bundle_at(1);
    let pooled = bundle_at(4);
    assert_eq!(serial.proof, pooled.proof);
    assert!(verifier.verify_bundle(&serial));
}
