//! F2 (paper Figure 2): the registration flow — transaction → mining →
//! event → every peer's off-chain tree update — including batch
//! registrations, withdrawals, and late-joining peers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use waku_suite::arith::traits::{Field, PrimeField};
use waku_suite::arith::Fr;
use waku_suite::chain::{Address, Chain, ChainConfig, ContractEvent, TxKind, ETHER};
use waku_suite::merkle::DenseTree;
use waku_suite::rln_relay::GroupManager;

const DEPTH: usize = 8;

fn chain_and_user() -> (Chain, Address) {
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let user = Address::from_seed(b"reg-sync");
    chain.fund(user, 1_000 * ETHER);
    (chain, user)
}

#[test]
fn many_peers_converge_on_identical_roots() {
    let (mut chain, user) = chain_and_user();
    let mut rng = StdRng::seed_from_u64(1);
    let mut managers: Vec<GroupManager> = (0..10).map(|_| GroupManager::new(DEPTH)).collect();

    // Interleave registrations with syncs at different cadences.
    for round in 0..6u64 {
        for i in 0..3u64 {
            chain.submit(
                user,
                TxKind::Register {
                    commitment: Fr::random(&mut rng),
                },
                100 + i,
            );
        }
        chain.mine_block();
        // Only some managers sync each round (stragglers catch up later).
        for (i, gm) in managers.iter_mut().enumerate() {
            if !(i as u64 + round).is_multiple_of(3) {
                gm.sync(&chain);
            }
        }
    }
    // Final catch-up.
    for gm in managers.iter_mut() {
        gm.sync(&chain);
    }
    let root = managers[0].root();
    assert!(managers.iter().all(|g| g.root() == root));
    assert_eq!(managers[0].member_count(), 18);
}

#[test]
fn batch_registration_emits_ordered_events() {
    let (mut chain, user) = chain_and_user();
    let commitments: Vec<Fr> = (1..=5).map(Fr::from_u64).collect();
    chain.submit(
        user,
        TxKind::RegisterBatch {
            commitments: commitments.clone(),
        },
        100,
    );
    chain.mine_block();
    let events = chain.events_in_range(1, chain.height());
    assert_eq!(events.len(), 5);
    for (i, (_, event)) in events.iter().enumerate() {
        match event {
            ContractEvent::MemberRegistered { index, commitment } => {
                assert_eq!(*index, i as u64);
                assert_eq!(*commitment, commitments[i]);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    // and a GroupManager replays them into the same tree a direct build
    // produces
    let mut gm = GroupManager::new(DEPTH);
    gm.sync(&chain);
    let mut reference = DenseTree::new(DEPTH);
    for (i, c) in commitments.iter().enumerate() {
        reference.set(i as u64, *c);
    }
    assert_eq!(gm.root(), reference.root());
}

#[test]
fn withdrawal_and_reregistration_keep_views_consistent() {
    let (mut chain, user) = chain_and_user();
    let mut gm = GroupManager::new(DEPTH);
    for i in 1..=3u64 {
        chain.submit(
            user,
            TxKind::Register {
                commitment: Fr::from_u64(i * 100),
            },
            100,
        );
    }
    chain.mine_block();
    gm.sync(&chain);
    assert_eq!(gm.member_count(), 3);

    chain.submit(user, TxKind::Withdraw { index: 1 }, 100);
    chain.mine_block();
    gm.sync(&chain);
    assert_eq!(gm.member_count(), 2);

    // New member takes a fresh slot (the flat list appends).
    chain.submit(
        user,
        TxKind::Register {
            commitment: Fr::from_u64(999),
        },
        100,
    );
    chain.mine_block();
    gm.sync(&chain);
    assert_eq!(gm.member_count(), 3);

    // The reference tree (contract's authoritative flat list) agrees.
    let mut reference = DenseTree::new(DEPTH);
    for (i, c) in chain.contract().commitments().iter().enumerate() {
        reference.set(i as u64, *c);
    }
    assert_eq!(gm.root(), reference.root());
}

#[test]
fn late_joiner_catches_up_from_genesis() {
    let (mut chain, user) = chain_and_user();
    let mut rng = StdRng::seed_from_u64(2);
    let mut early = GroupManager::new(DEPTH);
    for _ in 0..12 {
        chain.submit(
            user,
            TxKind::Register {
                commitment: Fr::random(&mut rng),
            },
            100,
        );
        chain.mine_block();
        early.sync(&chain);
    }
    // A peer that boots now must reach the same root in one sync.
    let mut late = GroupManager::new(DEPTH);
    late.sync(&chain);
    assert_eq!(late.root(), early.root());
    assert_eq!(late.member_count(), 12);
}

#[test]
fn registration_is_invisible_until_mined() {
    let (mut chain, user) = chain_and_user();
    let mut gm = GroupManager::new(DEPTH);
    let before = gm.root();
    chain.submit(
        user,
        TxKind::Register {
            commitment: Fr::from_u64(5),
        },
        100,
    );
    // Still in the mempool: syncing sees nothing (§IV-A latency).
    gm.sync(&chain);
    assert_eq!(gm.root(), before);
    chain.mine_block();
    gm.sync(&chain);
    assert_ne!(gm.root(), before);
}
