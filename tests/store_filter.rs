//! Integration of the auxiliary Waku protocols with RLN-protected traffic:
//! 13/WAKU2-STORE persistence/pagination of validated messages and
//! 12/WAKU2-FILTER light-client push filtering (paper §I).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

use waku_suite::chain::{Address, Chain, ChainConfig, ETHER};
use waku_suite::relay::{
    Direction, FilterService, HistoryQuery, MessageStore, TopicRegistry, WakuMessage,
    DEFAULT_PUBSUB_TOPIC,
};
use waku_suite::rln::{RlnProver, RlnVerifier};
use waku_suite::rln_relay::node::{NodeConfig, WakuRlnRelayNode};
use waku_suite::rln_relay::Outcome;

const DEPTH: usize = 8;

fn keys() -> &'static (Arc<RlnProver>, RlnVerifier) {
    static CELL: OnceLock<(Arc<RlnProver>, RlnVerifier)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5707E);
        let (p, v) = RlnProver::keygen(DEPTH, &mut rng);
        (Arc::new(p), v)
    })
}

#[test]
fn store_archives_only_validated_traffic() {
    let mut rng = StdRng::seed_from_u64(1);
    let (prover, verifier) = keys();
    let mut chain = Chain::new(ChainConfig {
        tree_depth: DEPTH,
        ..ChainConfig::default()
    });
    let config = NodeConfig::builder()
        .tree_depth(DEPTH)
        .epoch_length(std::time::Duration::from_secs(1))
        .build()
        .expect("valid node config");
    let mut publisher = {
        let addr = Address::from_seed(b"pub");
        chain.fund(addr, 10 * ETHER);
        let mut n =
            WakuRlnRelayNode::new(config, addr, Arc::clone(prover), verifier.clone(), &mut rng);
        n.register(&mut chain);
        n
    };
    let mut router = {
        let addr = Address::from_seed(b"router");
        chain.fund(addr, 10 * ETHER);
        let mut n =
            WakuRlnRelayNode::new(config, addr, Arc::clone(prover), verifier.clone(), &mut rng);
        n.register(&mut chain);
        n
    };
    chain.mine_block();
    publisher.sync(&mut chain);
    router.sync(&mut chain);

    let mut store = MessageStore::new(100);
    for (i, at) in (100u64..104).enumerate() {
        let wm = WakuMessage::new(format!("note {i}").into_bytes(), "/app/1/notes/proto", at);
        let bundle = publisher.publish(&wm.to_bytes(), at, &mut rng).unwrap();
        // The store node only persists what validation relays.
        if router.handle_incoming(&bundle, at, &mut chain) == Outcome::Relay {
            store.insert(WakuMessage::from_bytes(&bundle.payload).unwrap());
        }
    }
    // A rate violation is NOT archived.
    let spam = publisher
        .publish_unchecked(b"same epoch again", 103, &mut rng)
        .unwrap();
    let outcome = router.handle_incoming(&spam, 103, &mut chain);
    assert!(matches!(outcome, Outcome::Spam(_)));

    assert_eq!(store.len(), 4);
    let page = store.query(&HistoryQuery {
        content_topics: vec!["/app/1/notes/proto".into()],
        direction: Direction::Backward,
        page_size: 2,
        ..Default::default()
    });
    assert_eq!(page.messages.len(), 2);
    assert_eq!(page.messages[0].timestamp, 103, "newest first");
    assert!(page.next_cursor.is_some());
}

#[test]
fn filter_pushes_only_matching_content_topics() {
    let mut filter = FilterService::new();
    filter.subscribe(7, vec!["/chat".into()]);
    filter.subscribe(8, vec!["/chat".into(), "/alerts".into()]);

    let mut pushes: Vec<(usize, String)> = Vec::new();
    for wm in [
        WakuMessage::new(vec![1], "/chat", 1),
        WakuMessage::new(vec![2], "/alerts", 2),
        WakuMessage::new(vec![3], "/noise", 3),
    ] {
        for peer in filter.match_message(&wm) {
            pushes.push((peer, wm.content_topic.clone()));
        }
    }
    assert_eq!(
        pushes,
        vec![
            (7, "/chat".to_string()),
            (8, "/chat".to_string()),
            (8, "/alerts".to_string())
        ]
    );
}

#[test]
fn topic_registry_maps_waku_topics_to_gossip_ids() {
    let mut reg = TopicRegistry::new();
    let default = reg.intern(DEFAULT_PUBSUB_TOPIC);
    let app = reg.intern("/waku/2/my-app/proto");
    assert_ne!(default, app);
    assert_eq!(reg.name_of(default), Some(DEFAULT_PUBSUB_TOPIC));
    // round-trip a message through relay encoding
    let wm = WakuMessage::new(b"x".to_vec(), "/app/1/c/proto", 42);
    let decoded =
        waku_suite::relay::decode_from_relay(&waku_suite::relay::encode_for_relay(&wm)).unwrap();
    assert_eq!(decoded, wm);
}
