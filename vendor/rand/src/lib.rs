//! Minimal, deterministic drop-in for the subset of `rand` 0.8 used by this
//! workspace. The build environment has no crates.io access, so the real
//! crate cannot be fetched; every item here mirrors the upstream signature
//! so switching back to the real crate is a manifest-only change.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha12, but a high-quality deterministic generator, which is all the
//! workspace relies on (seeded reproducibility, not a specific stream).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the role the `Standard`
/// distribution plays upstream).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that `Rng::gen_range` accepts. Parameterized over the output
/// type so the caller's expected type drives integer-literal inference,
/// as with upstream's `SampleRange<T>`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::sample(self) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

/// Buffer types `Rng::fill` can populate.
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into a full seed, as upstream does.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
