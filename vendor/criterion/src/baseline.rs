//! Benchmark-baseline persistence for the vendored criterion stub.
//!
//! Real criterion keeps history under `target/criterion/` with full
//! statistics; this stub records one JSON object per benchmark id —
//! min/median/mean nanoseconds per iteration — merged into a single
//! baseline file so CI can archive it and `exp_bench_compare` (in
//! `waku-bench`) can diff two baselines for regressions.
//!
//! The file defaults to `target/bench-baseline.json` relative to the
//! working directory (the workspace root under `cargo bench`) and can be
//! redirected with the `WAKU_BENCH_BASELINE` environment variable.
//! Successive bench binaries in one `cargo bench` run all merge into the
//! same file, keyed by benchmark id.

use std::sync::Mutex;

/// Environment variable overriding the baseline path.
pub const BASELINE_ENV: &str = "WAKU_BENCH_BASELINE";

/// Default baseline path, relative to the working directory.
pub const BASELINE_PATH: &str = "target/bench-baseline.json";

/// Summary statistics of one benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark id (`group/param` or bare function name).
    pub id: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: u128,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: u128,
    /// Number of samples taken.
    pub samples: usize,
}

static REGISTRY: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Records one finished benchmark (called by `Bencher::report`).
pub(crate) fn record(rec: BenchRecord) {
    REGISTRY.lock().unwrap().push(rec);
}

/// Records an externally measured per-unit cost (nanoseconds) under a
/// benchmark id, e.g. ns/simulated-event from a scenario sweep the bench
/// timed itself. Stored as min = median = mean so `exp_bench_compare`
/// treats it like any timing benchmark (higher = regression).
pub fn record_value(id: impl Into<String>, ns: u128, samples: usize) {
    record(BenchRecord {
        id: id.into(),
        min_ns: ns,
        median_ns: ns,
        mean_ns: ns,
        samples,
    });
}

fn registry_snapshot() -> Vec<BenchRecord> {
    REGISTRY.lock().unwrap().clone()
}

/// Resolved baseline path: the `WAKU_BENCH_BASELINE` env var if set,
/// otherwise `bench-baseline.json` inside the build's real `target/`
/// directory (located by walking up from the bench executable, since cargo
/// runs bench binaries with the package directory as CWD).
pub fn baseline_path() -> String {
    if let Ok(path) = std::env::var(BASELINE_ENV) {
        return path;
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.join("bench-baseline.json").display().to_string();
            }
        }
    }
    BASELINE_PATH.to_string()
}

/// Serializes records as the baseline JSON document.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {}: {{\"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            json_string(&r.id),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            comma
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a baseline document produced by [`to_json`] (tolerates arbitrary
/// whitespace; numbers must be unsigned integers).
///
/// # Errors
///
/// Returns a description of the first syntax problem encountered.
pub fn parse_baseline(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.expect('{')?;
    let key = p.string()?;
    if key != "benches" {
        return Err(format!("expected \"benches\" key, found {key:?}"));
    }
    p.expect(':')?;
    p.expect('{')?;
    let mut records = Vec::new();
    if !p.peek_is('}') {
        loop {
            let id = p.string()?;
            p.expect(':')?;
            p.expect('{')?;
            let mut rec = BenchRecord {
                id,
                min_ns: 0,
                median_ns: 0,
                mean_ns: 0,
                samples: 0,
            };
            if !p.peek_is('}') {
                loop {
                    let field = p.string()?;
                    p.expect(':')?;
                    let value = p.number()?;
                    match field.as_str() {
                        "min_ns" => rec.min_ns = value,
                        "median_ns" => rec.median_ns = value,
                        "mean_ns" => rec.mean_ns = value,
                        "samples" => rec.samples = value as usize,
                        other => return Err(format!("unknown field {other:?}")),
                    }
                    if !p.comma_or_close('}')? {
                        break;
                    }
                }
            }
            p.expect('}')?;
            records.push(rec);
            if !p.comma_or_close('}')? {
                break;
            }
        }
    }
    p.expect('}')?;
    p.expect('}')?;
    Ok(records)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.chars.get(self.pos) == Some(&c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(&got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected {c:?} at offset {}, found {got:?}",
                self.pos
            )),
        }
    }

    /// Consumes either a comma (continue) or peeks the closing delimiter
    /// (stop, not consumed).
    fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&c) if c == close => Ok(false),
            got => Err(format!("expected ',' or {close:?}, found {got:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos) {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos) {
                        Some('n') => out.push('\n'),
                        Some(&c) => out.push(c),
                        None => return Err("unterminated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<u128, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at offset {start}"));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }
}

/// Merges this process's recorded benchmarks into the baseline file
/// (records with the same id are replaced, others preserved), creating it
/// and its parent directory as needed. Called by `criterion_main!` after
/// all groups have run; a no-op when nothing was recorded.
pub fn write_baseline() {
    let new = registry_snapshot();
    if new.is_empty() {
        return;
    }
    let path = baseline_path();
    let mut merged: Vec<BenchRecord> = match std::fs::read_to_string(&path) {
        Ok(text) => parse_baseline(&text).unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    for rec in new {
        if let Some(existing) = merged.iter_mut().find(|r| r.id == rec.id) {
            *existing = rec;
        } else {
            merged.push(rec);
        }
    }
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, to_json(&merged)) {
        Ok(()) => println!("\nbaseline written to {path}"),
        Err(e) => eprintln!("warning: could not write bench baseline {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                id: "rln_prove/10".into(),
                min_ns: 123_456,
                median_ns: 130_000,
                mean_ns: 131_002,
                samples: 10,
            },
            BenchRecord {
                id: "merkle/insert".into(),
                min_ns: 42,
                median_ns: 43,
                mean_ns: 44,
                samples: 20,
            },
        ]
    }

    #[test]
    fn json_roundtrip() {
        let records = sample();
        let parsed = parse_baseline(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn empty_document_roundtrip() {
        assert_eq!(parse_baseline(&to_json(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"other\": {}}").is_err());
    }
}
