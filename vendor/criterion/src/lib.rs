//! Minimal drop-in for the subset of `criterion` used by this workspace
//! (the build environment has no crates.io access). It performs real
//! wall-clock measurement — warmup, then `sample_size` timed batches — and
//! reports min/mean/max per benchmark to stdout. Unlike upstream there is
//! no statistical analysis or HTML report, but each run's per-benchmark
//! min/median/mean are merged into a JSON baseline file (see [`baseline`])
//! that `exp_bench_compare` in `waku-bench` diffs for regressions.

pub mod baseline;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Identifies one benchmark within a group or function.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup, and a rough scale for how many iterations fit a sample.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        // Aim for ~10ms per sample, capped so slow routines still finish.
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000)
                as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let median = {
            let mut sorted = self.samples.clone();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        };
        println!("{id:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
        baseline::record(baseline::BenchRecord {
            id: id.to_string(),
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
            samples: self.samples.len(),
        });
    }
}

/// Entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.id, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts either a `BenchmarkId` or a bare string, as upstream does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(id);
}

/// Declares a benchmark group function; supports both the positional and the
/// `name`/`config`/`targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main` running the listed groups, then merging the run's
/// results into the JSON baseline file (see [`baseline`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::baseline::write_baseline();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = quick_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
