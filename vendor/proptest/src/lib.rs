//! Minimal, deterministic drop-in for the subset of `proptest` used by this
//! workspace (the build environment has no crates.io access). It implements
//! the `proptest!` macro, `Strategy` + `prop_map`, `any::<T>()`, integer
//! range / tuple / vec / array strategies, `sample::Index`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Shrinking is basic but real: integer range strategies shrink toward the
//! range start, `collection::vec` shrinks to shorter prefixes, and tuples
//! shrink one component at a time. When a case fails, the runner greedily
//! re-runs shrink candidates until none still fails (capped at 4096 steps)
//! and panics with both the original and the minimal failing inputs.
//! Strategies without a meaningful shrink (`prop_map`, `any`, arrays)
//! simply report the original case. The number of cases per property
//! defaults to 32 and can be raised with the `PROPTEST_CASES` environment
//! variable.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, "smallest"
        /// first. Each candidate must itself be producible by this
        /// strategy. The default is no shrinking; the `proptest!` runner
        /// then reports the original failing case unchanged.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`]. Does not shrink: the mapping is
    /// one-way, so a shrunk output cannot be traced back to an input.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }

        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            (**self).shrink(value)
        }
    }

    // Tuple strategies shrink one component at a time, holding the
    // others fixed (hence the `Value: Clone` bounds): replacing exactly
    // one slot is a clone of the whole tuple plus one field assignment.
    macro_rules! impl_strategy_tuple {
        ($(($name:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_strategy_tuple!((A, 0));
    impl_strategy_tuple!((A, 0), (B, 1));
    impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
    impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
    impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

    macro_rules! impl_strategy_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    integer_shrink(self.start, *value)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    integer_shrink(*self.start(), *value)
                }
            }
        )*};
    }

    // Candidates toward the range start: the start itself (the biggest
    // jump), the midpoint, and `value − 1` (the smallest step),
    // ascending and deduplicated. Empty when the value already sits at
    // the start.
    fn integer_shrink<T>(lo: T, value: T) -> Vec<T>
    where
        T: Copy + PartialOrd + PartialEq + ShrinkArith,
    {
        let mut out = Vec::new();
        if value > lo {
            out.push(lo);
            if let Some(span) = value.checked_sub_s(lo) {
                let mid = lo.add_s(span.half());
                if mid > lo && mid < value {
                    out.push(mid);
                }
            }
            out.push(value.dec());
            out.dedup_by(|a, b| a == b);
        }
        out
    }

    /// The little arithmetic `integer_shrink` needs, implemented for
    /// every integer type the range strategies cover.
    trait ShrinkArith: Sized {
        fn checked_sub_s(self, rhs: Self) -> Option<Self>;
        fn add_s(self, rhs: Self) -> Self;
        fn half(self) -> Self;
        fn dec(self) -> Self;
    }

    macro_rules! impl_shrink_arith {
        ($($t:ty),*) => {$(
            impl ShrinkArith for $t {
                fn checked_sub_s(self, rhs: Self) -> Option<Self> {
                    self.checked_sub(rhs)
                }
                fn add_s(self, rhs: Self) -> Self {
                    self + rhs
                }
                fn half(self) -> Self {
                    self / 2
                }
                fn dec(self) -> Self {
                    self - 1
                }
            }
        )*};
    }
    impl_shrink_arith!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);
}

pub use strategy::Strategy;

/// The RNG driving each property; deterministic per test.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name: stable seeds across runs, distinct
        // streams per property.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        rand::Rng::gen_range(&mut self.0, range)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Number of cases to run per property when no config is given.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Cap on shrink candidates tried while minimizing one failing case.
pub const MAX_SHRINK_STEPS: usize = 4096;

/// The engine behind `proptest!`: runs `cases` random cases of `run`,
/// skipping `prop_assume!` rejections, and on failure greedily minimizes
/// the inputs via [`Strategy::shrink`] before panicking with both the
/// original and the minimal failing case. `render` turns a value tuple
/// into the `name = value, ...` listing for the panic message.
#[doc(hidden)]
pub fn run_property<S, R, F>(
    name: &str,
    strategies: &S,
    cases: usize,
    rng: &mut TestRng,
    render: R,
    run: F,
) where
    S: Strategy,
    S::Value: Clone,
    R: Fn(&S::Value) -> String,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rejected = 0usize;
    let mut case = 0usize;
    while case < cases {
        let vals = strategies.new_value(rng);
        match run(vals.clone()) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > cases * 16 {
                    panic!("proptest {name}: too many prop_assume rejections");
                }
            }
            Err(TestCaseError::Fail(first_msg)) => {
                let original = render(&vals);
                let (minimal_vals, msg, steps) = minimize(strategies, vals, first_msg, &run);
                let minimal = render(&minimal_vals);
                panic!(
                    "proptest {name} failed at case {case} with inputs [{original}]: {msg}\n  \
                     minimal inputs: [{minimal}] ({steps} shrink steps)"
                );
            }
        }
    }
}

/// Greedy minimization: adopt the first shrink candidate that still
/// fails and restart from it; stop when every candidate passes (or is
/// rejected by `prop_assume!`) or at [`MAX_SHRINK_STEPS`].
fn minimize<S, F>(
    strategies: &S,
    initial: S::Value,
    first_msg: String,
    run: &F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut vals = initial;
    let mut msg = first_msg;
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for candidate in strategies.shrink(&vals) {
            steps += 1;
            if steps > MAX_SHRINK_STEPS {
                return (vals, msg, steps);
            }
            if let Err(TestCaseError::Fail(m)) = run(candidate.clone()) {
                vals = candidate;
                msg = m;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (vals, msg, steps);
        }
    }
}

/// Per-`proptest!`-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolved case count: the `PROPTEST_CASES` env var wins, as upstream.
    pub fn resolved_cases(&self) -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases as usize)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive leaf types supported by `any`.
pub trait ArbitraryPrimitive: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_primitive!(u8, u16, u32, u64, u128, usize, i64, bool);

pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod sample {
    use super::{ArbitraryPrimitive, TestRng};

    /// An abstract index into a not-yet-known collection length, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps the abstract index into `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryPrimitive for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(<u64 as rand::Standard>::sample(rng))
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len_range`.
    pub struct VecStrategy<S> {
        element: S,
        len_range: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.len_range.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        /// Shrinks to shorter prefixes: the minimum length (the biggest
        /// jump), half way down, and one element shorter, deduplicated.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min = self.len_range.start;
            let mut out: Vec<Self::Value> = Vec::new();
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                out.dedup_by(|a, b| a.len() == b.len());
            }
            out
        }
    }

    pub fn vec<S: Strategy>(element: S, len_range: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len_range.is_empty(), "empty length range");
        VecStrategy { element, len_range }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-size arrays of one element strategy.
    pub struct UniformArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy(element)
            }
        )*};
    }
    uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Runs each `#[test] fn name(binding in strategy, ...) { body }` as a
/// standard test executing [`cases()`] random cases. On failure the
/// inputs are greedily minimized via [`Strategy::shrink`] (integer
/// ranges shrink toward their start, `collection::vec` to shorter
/// prefixes) and the panic message carries both the original and the
/// minimal failing inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $(#[test] $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let config: $crate::ProptestConfig = $cfg;
                // All bindings ride in one tuple strategy so the shrinker
                // can re-run the body with any single binding simplified.
                let strategies = ($($strat,)+);
                $crate::run_property(
                    stringify!($name),
                    &strategies,
                    config.resolved_cases(),
                    &mut rng,
                    |vals| {
                        let ($($arg,)+) = vals;
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg),)+].join(", ")
                    },
                    // Each case gets the inputs by value (cloned by the
                    // runner), so the body may freely move them and
                    // shrinking can replay. A binding may legitimately go
                    // unused in the body (e.g. it only feeds the failure
                    // rendering), hence the allow.
                    |vals| {
                        #[allow(unused_variables)]
                        let ($($arg,)+) = vals;
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )+
    };
    ($(#[test] $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(#[test] $(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_vec_compose(v in crate::collection::vec(any::<u8>().prop_map(|b| b as u64), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn assume_skips_cases(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn arrays_and_index(bytes in crate::array::uniform32(any::<u8>()),
                            idx in any::<crate::sample::Index>()) {
            prop_assert_eq!(bytes.len(), 32);
            prop_assert!(idx.index(10) < 10);
        }
    }

    // Shrinking: each failing property below minimizes to the smallest
    // input that still violates it, and the panic message names it.
    proptest! {
        #[test]
        #[should_panic(expected = "minimal inputs: [x = 10]")]
        fn integers_shrink_toward_the_range_start(x in 0u64..100) {
            // Fails for every x ≥ 10; the boundary case 10 is minimal.
            prop_assert!(x < 10);
        }

        #[test]
        #[should_panic(expected = "minimal inputs: [v = [0, 0, 0]]")]
        fn vecs_shrink_to_the_shortest_failing_prefix(v in crate::collection::vec(Just(0u8), 3..40)) {
            // Fails for every generated length (3..40), so shrinking
            // bottoms out at the 3-element minimum prefix.
            prop_assert!(v.len() < 3);
        }

        #[test]
        #[should_panic(expected = "minimal inputs: [x = 3, y = 20]")]
        fn tuples_shrink_one_component_at_a_time(x in 3u64..50, y in 0u64..90) {
            // Fails whenever y ≥ 20 regardless of x, so x shrinks all the
            // way to its range start and y stops at the boundary.
            prop_assert!(y < 20);
        }
    }

    #[test]
    fn range_shrink_candidates_move_toward_the_start() {
        use crate::Strategy;
        let s = 3u64..17;
        assert_eq!(s.shrink(&3), Vec::<u64>::new());
        assert_eq!(s.shrink(&4), vec![3]);
        assert_eq!(s.shrink(&16), vec![3, 9, 15]);
        let inclusive = 0usize..=4;
        assert_eq!(inclusive.shrink(&4), vec![0, 2, 3]);
        let signed = -5i8..10;
        assert_eq!(signed.shrink(&-4), vec![-5]);
        assert_eq!(signed.shrink(&9), vec![-5, 2, 8]);
    }

    #[test]
    fn vec_shrink_yields_prefixes_down_to_the_minimum_length() {
        use crate::Strategy;
        let s = crate::collection::vec(Just(7u8), 1..10);
        assert_eq!(s.shrink(&vec![7; 5]), vec![vec![7], vec![7; 3], vec![7; 4]]);
        assert_eq!(s.shrink(&vec![7]), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn tuple_shrink_holds_the_other_components_fixed() {
        use crate::Strategy;
        let s = (3u64..17, 0usize..=4);
        assert_eq!(s.shrink(&(5, 2)), vec![(3, 2), (4, 2), (5, 0), (5, 1)]);
        assert_eq!(s.shrink(&(3, 0)), Vec::<(u64, usize)>::new());
    }
}
