//! Minimal, deterministic drop-in for the subset of `proptest` used by this
//! workspace (the build environment has no crates.io access). It implements
//! the `proptest!` macro, `Strategy` + `prop_map`, `any::<T>()`, integer
//! range / tuple / vec / array strategies, `sample::Index`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the case number and the strategy inputs' `Debug` rendering where
//! available. The number of cases per property defaults to 32 and can be
//! raised with the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);

    macro_rules! impl_strategy_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);
}

pub use strategy::Strategy;

/// The RNG driving each property; deterministic per test.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name: stable seeds across runs, distinct
        // streams per property.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        rand::Rng::gen_range(&mut self.0, range)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Number of cases to run per property when no config is given.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Per-`proptest!`-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolved case count: the `PROPTEST_CASES` env var wins, as upstream.
    pub fn resolved_cases(&self) -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases as usize)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive leaf types supported by `any`.
pub trait ArbitraryPrimitive: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_primitive!(u8, u16, u32, u64, u128, usize, i64, bool);

pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod sample {
    use super::{ArbitraryPrimitive, TestRng};

    /// An abstract index into a not-yet-known collection length, mirroring
    /// `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps the abstract index into `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryPrimitive for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(<u64 as rand::Standard>::sample(rng))
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len_range`.
    pub struct VecStrategy<S> {
        element: S,
        len_range: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.len_range.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len_range: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len_range.is_empty(), "empty length range");
        VecStrategy { element, len_range }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-size arrays of one element strategy.
    pub struct UniformArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy(element)
            }
        )*};
    }
    uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Runs each `#[test] fn name(binding in strategy, ...) { body }` as a
/// standard test executing [`cases()`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut rejected = 0usize;
                let mut case = 0usize;
                while case < cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    // Render inputs up front: the body may move them, and on
                    // failure they are what makes the case reproducible.
                    let inputs = [$(
                        format!(concat!(stringify!($arg), " = {:?}"), $arg),
                    )+].join(", ");
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > cases * 16 {
                                panic!("proptest {}: too many prop_assume rejections", stringify!($name));
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} with inputs [{}]: {}",
                                stringify!($name), case, inputs, msg,
                            )
                        }
                    }
                }
            }
        )+
    };
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(#[test] fn $name($($arg in $strat),+) $body)+
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_vec_compose(v in crate::collection::vec(any::<u8>().prop_map(|b| b as u64), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn assume_skips_cases(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn arrays_and_index(bytes in crate::array::uniform32(any::<u8>()),
                            idx in any::<crate::sample::Index>()) {
            prop_assert_eq!(bytes.len(), 32);
            prop_assert!(idx.index(10) < 10);
        }
    }
}
